//! Grid-based Gaussian-mixture EM localizer ("LGMM", ref. \[20\]).
//!
//! Zhang et al. enumerate grid points and fit a Gaussian mixture over
//! the RSS series with expectation–maximization, choosing the component
//! count by BIC. Our implementation follows that recipe: for each
//! hypothesized count `K`, EM alternates soft responsibilities with a
//! per-component grid search for the maximizing grid point; BIC over
//! `K` picks the model.
//!
//! LGMM is blind (it never looks at BSSIDs) but, lacking CrowdWiFi's
//! sparse-recovery structure and consolidation, it needs many more
//! readings for the same accuracy — the Fig. 8 contrast.

// Index-based loops below mirror the textbook algorithms; iterator
// rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::{ApLocalizer, LocalizationEstimate};
use crowdwifi_channel::bic::{bic, free_params_for_ap_count};
use crowdwifi_channel::{GmmModel, PathLossModel, RssReading};
use crowdwifi_geo::{Grid, Point};

/// The LGMM localizer.
#[derive(Debug, Clone)]
pub struct Lgmm {
    gmm: GmmModel,
    lattice: f64,
    radio_range: f64,
    max_k: usize,
    em_iterations: usize,
}

impl Lgmm {
    /// Creates an LGMM localizer on the given channel model.
    ///
    /// # Panics
    ///
    /// Panics if `lattice` or `radio_range` is not positive, or
    /// `max_k == 0`.
    pub fn new(pathloss: PathLossModel, lattice: f64, radio_range: f64, max_k: usize) -> Self {
        assert!(lattice > 0.0, "lattice must be positive");
        assert!(radio_range > 0.0, "radio_range must be positive");
        assert!(max_k > 0, "max_k must be positive");
        Lgmm {
            gmm: GmmModel::new(pathloss, 0.05).expect("static sigma factor is valid"),
            lattice,
            radio_range,
            max_k,
            em_iterations: 12,
        }
    }

    /// EM fit for a fixed component count; returns positions and the
    /// final log-likelihood.
    fn fit_k(&self, data: &[(Point, f64)], grid: &Grid, k: usize) -> (Vec<Point>, f64) {
        let m = data.len();
        // Deterministic initialization: spread components along the
        // reading sequence (drive order ≈ spatial order).
        let mut aps: Vec<Point> = (0..k)
            .map(|c| {
                let idx = (c * m + m / 2) / k.max(1);
                data[idx.min(m - 1)].0
            })
            .collect();

        for _ in 0..self.em_iterations {
            // E-step: responsibilities r_ic ∝ w_ic · N(r_i; μ_ic, σ_ic).
            let mut resp = vec![vec![0.0; k]; m];
            for (i, &(pos, rss)) in data.iter().enumerate() {
                let weights = self.gmm.weights(pos, &aps);
                let mut total = 0.0;
                for (c, ap) in aps.iter().enumerate() {
                    let d = pos.distance(*ap);
                    let mu = self.gmm.pathloss().mean_rss(d);
                    let sigma = (self.gmm.sigma_factor() * mu.abs()).max(1e-6);
                    let z = (rss - mu) / sigma;
                    let dens = (-0.5 * z * z).exp() / sigma;
                    resp[i][c] = weights[c] * dens;
                    total += resp[i][c];
                }
                if total > 0.0 {
                    for c in 0..k {
                        resp[i][c] /= total;
                    }
                } else {
                    for c in 0..k {
                        resp[i][c] = 1.0 / k as f64;
                    }
                }
            }
            // M-step: each component moves to the grid point maximizing
            // its responsibility-weighted log-density.
            let mut moved = false;
            for c in 0..k {
                let mut best: Option<(f64, Point)> = None;
                for gp in grid.iter() {
                    // Skip grid points unreachable from any responsible
                    // reading (cheap pruning).
                    let mut score = 0.0;
                    let mut relevant = false;
                    for (i, &(pos, rss)) in data.iter().enumerate() {
                        if resp[i][c] <= 1e-6 {
                            continue;
                        }
                        let d = pos.distance(gp);
                        if d > self.radio_range {
                            score += resp[i][c] * -1e3; // impossible
                            continue;
                        }
                        relevant = true;
                        let mu = self.gmm.pathloss().mean_rss(d);
                        let sigma = (self.gmm.sigma_factor() * mu.abs()).max(1e-6);
                        let z = (rss - mu) / sigma;
                        score += resp[i][c] * (-0.5 * z * z - sigma.ln());
                    }
                    if relevant && best.is_none_or(|(b, _)| score > b) {
                        best = Some((score, gp));
                    }
                }
                if let Some((_, gp)) = best {
                    if gp.distance(aps[c]) > 1e-9 {
                        moved = true;
                    }
                    aps[c] = gp;
                }
            }
            if !moved {
                break;
            }
        }
        let ll = self.gmm.log_likelihood(data, &aps);
        (aps, ll)
    }
}

impl ApLocalizer for Lgmm {
    fn localize(&self, readings: &[RssReading]) -> LocalizationEstimate {
        if readings.is_empty() {
            return LocalizationEstimate { positions: vec![] };
        }
        let data: Vec<(Point, f64)> = readings.iter().map(|r| (r.position, r.rss_dbm)).collect();
        let positions: Vec<Point> = readings.iter().map(|r| r.position).collect();
        let Ok(grid) = Grid::from_reference_points(&positions, self.radio_range, self.lattice)
        else {
            return LocalizationEstimate { positions: vec![] };
        };

        let m = readings.len();
        let mut best: Option<(f64, Vec<Point>)> = None;
        for k in 1..=self.max_k.min(m) {
            let (aps, ll) = self.fit_k(&data, &grid, k);
            if !ll.is_finite() {
                continue;
            }
            let score = bic(ll, free_params_for_ap_count(k), m);
            if best.as_ref().is_none_or(|(b, _)| score > *b) {
                best = Some((score, aps));
            }
        }
        LocalizationEstimate {
            positions: best.map(|(_, aps)| aps).unwrap_or_default(),
        }
    }

    fn name(&self) -> &'static str {
        "lgmm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn localizer() -> Lgmm {
        Lgmm::new(PathLossModel::uci_campus(), 10.0, 100.0, 4)
    }

    /// Fading-free readings, nearest AP heard, staggered lanes.
    fn drive(aps: &[Point], n: usize, spacing: f64) -> Vec<RssReading> {
        let model = PathLossModel::uci_campus();
        (0..n)
            .map(|i| {
                let p = Point::new(
                    spacing * i as f64,
                    if (i / 4) % 2 == 0 { 0.0 } else { 10.0 },
                );
                let nearest = aps
                    .iter()
                    .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                    .unwrap();
                RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
            })
            .collect()
    }

    #[test]
    fn finds_single_ap() {
        let ap = Point::new(60.0, 30.0);
        let readings = drive(&[ap], 24, 5.0);
        let est = localizer().localize(&readings);
        assert_eq!(est.count(), 1, "got {est:?}");
        assert!(est.positions[0].distance(ap) < 25.0);
    }

    #[test]
    fn finds_two_separated_aps() {
        let ap1 = Point::new(20.0, 25.0);
        let ap2 = Point::new(160.0, 25.0);
        let readings = drive(&[ap1, ap2], 30, 6.0);
        let est = localizer().localize(&readings);
        assert!(est.count() >= 2, "got {est:?}");
        for truth in [ap1, ap2] {
            let d = est
                .positions
                .iter()
                .map(|p| p.distance(truth))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 35.0, "AP {truth} unmatched ({d:.1} m)");
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(localizer().localize(&[]).count(), 0);
    }
}
