//! Property-based tests for the handoff substrate.

use crowdwifi_geo::Point;
use crowdwifi_geo::Rect;
use crowdwifi_handoff::connectivity::{ConnectivityTrace, Policy, SecondRecord};
use crowdwifi_handoff::db::ApDatabase;
use crowdwifi_handoff::session::{
    median_session_length, prob_longer_than, session_lengths, time_weighted_cdf,
};
use crowdwifi_handoff::transfer::{run_transfers, TransferConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn trace_from(flags: &[bool], ratio: f64) -> ConnectivityTrace {
    ConnectivityTrace {
        policy: Policy::AllAp,
        seconds: flags
            .iter()
            .map(|&connected| SecondRecord {
                position: Point::new(0.0, 0.0),
                best_ratio: if connected { ratio } else { 0.0 },
                connected,
                handoff: false,
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn session_lengths_partition_connected_time(flags in proptest::collection::vec(any::<bool>(), 0..200)) {
        let trace = trace_from(&flags, 1.0);
        let lengths = session_lengths(&trace);
        let connected = flags.iter().filter(|&&c| c).count();
        prop_assert_eq!(lengths.iter().sum::<usize>(), connected);
        prop_assert!(lengths.iter().all(|&l| l > 0));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one(lengths in proptest::collection::vec(1usize..50, 1..30)) {
        let cdf = time_weighted_cdf(&lengths);
        prop_assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tail_probability_complements_cdf(lengths in proptest::collection::vec(1usize..50, 1..30), q in 0usize..60) {
        let p = prob_longer_than(&lengths, q);
        prop_assert!((0.0..=1.0).contains(&p));
        // Longer thresholds can only shrink the tail.
        prop_assert!(prob_longer_than(&lengths, q + 1) <= p + 1e-12);
    }

    #[test]
    fn median_session_is_a_real_length(lengths in proptest::collection::vec(1usize..50, 1..30)) {
        let m = median_session_length(&lengths).unwrap();
        prop_assert!(lengths.contains(&m));
    }

    #[test]
    fn transfers_complete_only_on_connected_traces(
        flags in proptest::collection::vec(any::<bool>(), 10..80),
        seed in 0u64..100,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let trace = trace_from(&flags, 1.0);
        let stats = run_transfers(&trace, TransferConfig::default(), &mut rng);
        if flags.iter().all(|&c| !c) {
            prop_assert!(stats.completion_times.is_empty());
        }
        for &t in &stats.completion_times {
            prop_assert!(t > 0.0 && t.is_finite());
        }
    }

    #[test]
    fn better_links_never_hurt_throughput(flags in proptest::collection::vec(any::<bool>(), 40..120)) {
        let mut rng1 = ChaCha8Rng::seed_from_u64(5);
        let mut rng2 = ChaCha8Rng::seed_from_u64(5);
        let strong = run_transfers(&trace_from(&flags, 1.0), TransferConfig::default(), &mut rng1);
        let weak = run_transfers(&trace_from(&flags, 0.6), TransferConfig::default(), &mut rng2);
        prop_assert!(strong.completion_times.len() >= weak.completion_times.len());
    }

    #[test]
    fn db_perturbation_error_levels_are_respected(
        count_err in 0.0..3.0f64,
        loc_err in 0.0..3.0f64,
        seed in 0u64..100,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(500.0, 500.0)).unwrap();
        let truth: Vec<Point> = (0..8).map(|i| Point::new(60.0 * i as f64 + 20.0, 250.0)).collect();
        let db = ApDatabase::perturbed(&truth, area, count_err, loc_err, 10.0, &mut rng);
        // The count deviates from k by about count_err·k (split between
        // drops and ghosts, so the net count stays within the gross
        // error bound).
        let k = truth.len() as f64;
        prop_assert!((db.len() as f64 - k).abs() <= count_err * k + 1.0);
        prop_assert!(!db.is_empty());
    }
}
