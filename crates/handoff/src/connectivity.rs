//! Per-second connectivity simulation under the two handoff policies.
//!
//! Every AP broadcasts ten 500-byte beacons per second (§6.3); for each
//! one-second interval the simulation draws how many of each AP's
//! beacons the vehicle received (per-beacon success follows the
//! fading-perturbed reception probability). A second counts as
//! *adequately connected* when an AP the policy associated with
//! achieved more than 50 % reception (the paper's Fig. 10 criterion).

use crate::db::ApDatabase;
use crate::{HandoffError, Result};
use crowdwifi_channel::noise::ShadowFading;
use crowdwifi_geo::{Point, Trajectory};
use crowdwifi_vanet_sim::vanlan::reception_probability;
use crowdwifi_vanet_sim::Scenario;
use rand::Rng;

/// Association policy (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Hard handoff to the AP with the highest exponentially averaged
    /// beacon reception ratio; only that AP carries traffic.
    Brr,
    /// Opportunistic use of all APs in the vicinity; a second succeeds
    /// if at least one associated AP achieves adequate reception.
    AllAp,
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Policy::Brr => write!(f, "BRR"),
            Policy::AllAp => write!(f, "AllAP"),
        }
    }
}

/// One simulated second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondRecord {
    /// Vehicle position at the start of the second.
    pub position: Point,
    /// Best reception ratio among the APs the policy used this second.
    pub best_ratio: f64,
    /// Whether the second was adequately connected (> 50 % reception).
    pub connected: bool,
    /// Whether a hard handoff occurred this second (BRR only).
    pub handoff: bool,
}

/// The full per-second trace of one drive.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectivityTrace {
    /// One record per simulated second, in time order.
    pub seconds: Vec<SecondRecord>,
    /// The policy that produced the trace.
    pub policy: Policy,
}

impl ConnectivityTrace {
    /// Fraction of seconds with adequate connectivity.
    pub fn connectivity_fraction(&self) -> f64 {
        if self.seconds.is_empty() {
            return 0.0;
        }
        self.seconds.iter().filter(|s| s.connected).count() as f64 / self.seconds.len() as f64
    }

    /// Number of interruption events (connected → disconnected edges).
    pub fn interruptions(&self) -> usize {
        self.seconds
            .windows(2)
            .filter(|w| w[0].connected && !w[1].connected)
            .count()
    }
}

/// Configuration of the connectivity simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnectivityConfig {
    /// Beacons each AP sends per second (paper: one per 100 ms).
    pub beacons_per_second: usize,
    /// EWMA smoothing factor for the BRR ratio estimate.
    pub ewma_alpha: f64,
    /// Believed radio range used to select candidate APs from the
    /// database.
    pub believed_range: f64,
    /// A database entry maps to the nearest real AP within this radius;
    /// farther entries are ghosts that cannot carry traffic.
    pub match_radius: f64,
}

impl Default for ConnectivityConfig {
    fn default() -> Self {
        ConnectivityConfig {
            beacons_per_second: 10,
            ewma_alpha: 0.3,
            believed_range: 150.0,
            match_radius: 25.0,
        }
    }
}

/// Simulates one drive under `policy`, associating only with APs the
/// downloaded `db` makes the vehicle aware of.
///
/// # Errors
///
/// Returns [`HandoffError::InvalidParameter`] for non-positive beacon
/// rates or smoothing factors outside `(0, 1]`.
pub fn simulate<R: Rng + ?Sized>(
    policy: Policy,
    scenario: &Scenario,
    route: &Trajectory,
    db: &ApDatabase,
    config: ConnectivityConfig,
    rng: &mut R,
) -> Result<ConnectivityTrace> {
    if config.beacons_per_second == 0 {
        return Err(HandoffError::InvalidParameter(
            "beacons_per_second must be positive".to_string(),
        ));
    }
    if !(config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0) {
        return Err(HandoffError::InvalidParameter(format!(
            "ewma_alpha must lie in (0, 1], got {}",
            config.ewma_alpha
        )));
    }

    let fading = ShadowFading::new(scenario.shadow_sigma_db());
    let n_aps = scenario.aps().len();
    let mut ewma = vec![0.0_f64; n_aps];
    let mut current_brr: Option<usize> = None;
    let mut seconds = Vec::new();

    let duration = route.duration().floor() as usize;
    for t in 0..duration.max(1) {
        let pos = route.position_at(route.start_time() + t as f64);

        // Candidate real APs: DB entries believed nearby, matched to the
        // nearest real AP within the match radius. Ghost entries match
        // nothing; missing entries hide real APs the vehicle could have
        // used.
        let mut candidates: Vec<usize> = Vec::new();
        for believed in db.nearby(pos, config.believed_range) {
            let matched = scenario
                .aps()
                .iter()
                .enumerate()
                .filter(|(_, ap)| ap.position.distance(believed) <= config.match_radius)
                .min_by(|(_, a), (_, b)| {
                    a.position
                        .distance(believed)
                        .partial_cmp(&b.position.distance(believed))
                        .expect("finite distances")
                })
                .map(|(i, _)| i);
            if let Some(i) = matched {
                if !candidates.contains(&i) {
                    candidates.push(i);
                }
            }
        }

        // Per-candidate beacon reception this second.
        let mut ratios = vec![0.0_f64; n_aps];
        for &i in &candidates {
            let ap = &scenario.aps()[i];
            if !ap.covers(pos) {
                continue;
            }
            let mut received = 0usize;
            for _ in 0..config.beacons_per_second {
                let rss =
                    scenario.pathloss().mean_rss(ap.position.distance(pos)) + fading.sample(rng);
                if rng.random_range(0.0..1.0) < reception_probability(rss) {
                    received += 1;
                }
            }
            ratios[i] = received as f64 / config.beacons_per_second as f64;
        }
        for &i in &candidates {
            ewma[i] = config.ewma_alpha * ratios[i] + (1.0 - config.ewma_alpha) * ewma[i];
        }

        let (best_ratio, connected, handoff) = match policy {
            Policy::Brr => {
                // Hard handoff with hysteresis: stay on the associated
                // AP while its smoothed reception holds up; only when it
                // degrades badly (or leaves the candidate set) does the
                // vehicle re-associate with the best-EWMA candidate,
                // paying a one-second re-association outage.
                let sticky = current_brr.filter(|i| candidates.contains(i) && ewma[*i] > 0.3);
                match sticky {
                    Some(i) => (ratios[i], ratios[i] > 0.5, false),
                    None => {
                        let best = candidates
                            .iter()
                            .copied()
                            .max_by(|&a, &b| ewma[a].partial_cmp(&ewma[b]).expect("finite EWMA"));
                        let handoff = best.is_some() && current_brr.is_some();
                        current_brr = best.or(current_brr);
                        match best {
                            Some(i) if !handoff => (ratios[i], ratios[i] > 0.5, false),
                            Some(i) => (ratios[i], false, true),
                            None => (0.0, false, false),
                        }
                    }
                }
            }
            Policy::AllAp => {
                let best = candidates
                    .iter()
                    .map(|&i| ratios[i])
                    .fold(0.0_f64, f64::max);
                (best, best > 0.5, false)
            }
        };

        seconds.push(SecondRecord {
            position: pos,
            best_ratio,
            connected,
            handoff,
        });
    }

    Ok(ConnectivityTrace { seconds, policy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_vanet_sim::mobility::vanlan_round;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Scenario, Trajectory, ApDatabase) {
        let scenario = Scenario::vanlan();
        let route = vanlan_round(0.0);
        let db = ApDatabase::new(scenario.ap_positions());
        (scenario, route, db)
    }

    #[test]
    fn allap_connects_at_least_as_often_as_brr() {
        let (scenario, route, db) = setup();
        let cfg = ConnectivityConfig::default();
        let mut frac_all = 0.0;
        let mut frac_brr = 0.0;
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let all = simulate(Policy::AllAp, &scenario, &route, &db, cfg, &mut rng).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let brr = simulate(Policy::Brr, &scenario, &route, &db, cfg, &mut rng).unwrap();
            frac_all += all.connectivity_fraction();
            frac_brr += brr.connectivity_fraction();
        }
        assert!(
            frac_all >= frac_brr,
            "AllAP {frac_all:.2} must be ≥ BRR {frac_brr:.2}"
        );
    }

    #[test]
    fn empty_db_means_no_connectivity() {
        let (scenario, route, _) = setup();
        let db = ApDatabase::new(vec![]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trace = simulate(
            Policy::AllAp,
            &scenario,
            &route,
            &db,
            ConnectivityConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(trace.connectivity_fraction(), 0.0);
    }

    #[test]
    fn ghost_entries_carry_no_traffic() {
        let (scenario, route, _) = setup();
        // DB full of positions far from any real AP.
        let db = ApDatabase::new(vec![Point::new(400.0, 50.0); 5]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let trace = simulate(
            Policy::AllAp,
            &scenario,
            &route,
            &db,
            ConnectivityConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(trace.connectivity_fraction(), 0.0);
    }

    #[test]
    fn invalid_config_rejected() {
        let (scenario, route, db) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let bad = ConnectivityConfig {
            beacons_per_second: 0,
            ..ConnectivityConfig::default()
        };
        assert!(simulate(Policy::Brr, &scenario, &route, &db, bad, &mut rng).is_err());
        let bad2 = ConnectivityConfig {
            ewma_alpha: 0.0,
            ..ConnectivityConfig::default()
        };
        assert!(simulate(Policy::Brr, &scenario, &route, &db, bad2, &mut rng).is_err());
    }

    #[test]
    fn interruption_counting() {
        let mk = |flags: &[bool]| ConnectivityTrace {
            policy: Policy::Brr,
            seconds: flags
                .iter()
                .map(|&connected| SecondRecord {
                    position: Point::new(0.0, 0.0),
                    best_ratio: 0.0,
                    connected,
                    handoff: false,
                })
                .collect(),
        };
        assert_eq!(mk(&[true, false, true, false]).interruptions(), 2);
        assert_eq!(mk(&[true, true, true]).interruptions(), 0);
        assert_eq!(mk(&[]).interruptions(), 0);
    }
}
