//! TCP-like file-transfer evaluation (Fig. 11).
//!
//! §6.3: "we next conduct an experiment transferring a 10 KB file over
//! TCP among user-vehicles and APs … transfers that make no progress
//! for 10 s are terminated and re-started afresh." Transfers run
//! back-to-back inside each connected session; the metrics are the
//! median time to complete a transfer and the average number of
//! completed transfers per session.

use crate::connectivity::ConnectivityTrace;
use crate::session::session_lengths;
use rand::Rng;

/// Transfer-simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferConfig {
    /// File size in kilobytes (paper: 10 KB).
    pub file_kb: f64,
    /// Effective goodput in kilobytes per second at perfect reception.
    /// The raw link is 1 Mbps (125 kB/s), but TCP over lossy half-duplex
    /// 802.11b with beacon contention delivers a fraction of that; 25
    /// kB/s makes a clean 10 KB transfer take ≈0.4 s of air time.
    pub rate_kbps: f64,
    /// Simulation tick in seconds.
    pub tick: f64,
    /// Stall timeout: a transfer with no progress for this long is
    /// restarted afresh (paper: 10 s).
    pub stall_timeout: f64,
    /// Fixed per-transfer setup overhead in seconds (TCP handshake).
    pub setup_overhead: f64,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            file_kb: 10.0,
            rate_kbps: 25.0,
            tick: 0.1,
            stall_timeout: 10.0,
            setup_overhead: 0.2,
        }
    }
}

/// Aggregated transfer results for one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferStats {
    /// Completion times of every finished transfer, in seconds.
    pub completion_times: Vec<f64>,
    /// Average completed transfers per connected session.
    pub transfers_per_session: f64,
    /// Number of stall-restarts that occurred.
    pub restarts: usize,
}

impl TransferStats {
    /// Median completion time; `None` when nothing completed.
    pub fn median_time(&self) -> Option<f64> {
        if self.completion_times.is_empty() {
            return None;
        }
        let mut sorted = self.completion_times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        Some(sorted[sorted.len() / 2])
    }
}

/// Runs back-to-back transfers over a connectivity trace.
///
/// Each second of the trace provides a reception ratio; during a tick a
/// packet burst succeeds with that probability, delivering
/// `rate · tick` kilobytes. Disconnected seconds deliver nothing (and
/// count toward the stall timer).
pub fn run_transfers<R: Rng + ?Sized>(
    trace: &ConnectivityTrace,
    config: TransferConfig,
    rng: &mut R,
) -> TransferStats {
    let mut completion_times = Vec::new();
    let mut restarts = 0usize;

    let mut in_progress = 0.0_f64; // kB delivered of current transfer
    let mut elapsed = 0.0_f64; // seconds spent on current transfer
    let mut stalled_for = 0.0_f64;

    for second in &trace.seconds {
        let ratio = if second.connected {
            second.best_ratio
        } else {
            0.0
        };
        let mut t = 0.0;
        while t < 1.0 - 1e-9 {
            t += config.tick;
            elapsed += config.tick;
            let delivered = if ratio > 0.0 && rng.random_range(0.0..1.0) < ratio {
                config.rate_kbps * config.tick
            } else {
                0.0
            };
            if delivered > 0.0 {
                in_progress += delivered;
                stalled_for = 0.0;
            } else {
                stalled_for += config.tick;
            }
            if elapsed >= config.setup_overhead && in_progress >= config.file_kb {
                completion_times.push(elapsed);
                in_progress = 0.0;
                elapsed = 0.0;
                stalled_for = 0.0;
            } else if stalled_for >= config.stall_timeout {
                // Restart afresh: progress lost, timer keeps running on
                // the *new* attempt.
                restarts += 1;
                in_progress = 0.0;
                elapsed = 0.0;
                stalled_for = 0.0;
            }
        }
    }

    let sessions = session_lengths(trace).len();
    let transfers_per_session = if sessions == 0 {
        0.0
    } else {
        completion_times.len() as f64 / sessions as f64
    };
    TransferStats {
        completion_times,
        transfers_per_session,
        restarts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{Policy, SecondRecord};
    use crowdwifi_geo::Point;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn trace_with_ratio(seconds: usize, ratio: f64) -> ConnectivityTrace {
        ConnectivityTrace {
            policy: Policy::AllAp,
            seconds: (0..seconds)
                .map(|_| SecondRecord {
                    position: Point::new(0.0, 0.0),
                    best_ratio: ratio,
                    connected: ratio > 0.5,
                    handoff: false,
                })
                .collect(),
        }
    }

    #[test]
    fn perfect_link_completes_many_fast_transfers() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let stats = run_transfers(
            &trace_with_ratio(60, 1.0),
            TransferConfig::default(),
            &mut rng,
        );
        assert!(stats.completion_times.len() > 50);
        let median = stats.median_time().unwrap();
        assert!((0.3..1.5).contains(&median), "median {median}");
        assert_eq!(stats.restarts, 0);
    }

    #[test]
    fn dead_link_completes_nothing_and_restarts() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let stats = run_transfers(
            &trace_with_ratio(60, 0.0),
            TransferConfig::default(),
            &mut rng,
        );
        assert!(stats.completion_times.is_empty());
        assert!(stats.restarts >= 5);
        assert_eq!(stats.median_time(), None);
    }

    #[test]
    fn weaker_link_means_slower_transfers() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let strong = run_transfers(
            &trace_with_ratio(120, 0.95),
            TransferConfig::default(),
            &mut rng,
        );
        let weak = run_transfers(
            &trace_with_ratio(120, 0.55),
            TransferConfig::default(),
            &mut rng,
        );
        assert!(strong.median_time().unwrap() <= weak.median_time().unwrap());
        assert!(strong.completion_times.len() > weak.completion_times.len());
    }

    #[test]
    fn transfers_per_session_accounting() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // Two 30 s sessions separated by an outage.
        let mut seconds = trace_with_ratio(30, 1.0).seconds;
        seconds.extend(trace_with_ratio(5, 0.0).seconds);
        seconds.extend(trace_with_ratio(30, 1.0).seconds);
        let trace = ConnectivityTrace {
            policy: Policy::AllAp,
            seconds,
        };
        let stats = run_transfers(&trace, TransferConfig::default(), &mut rng);
        assert!(stats.transfers_per_session > 10.0);
    }
}
