//! Uninterrupted-session analysis (Fig. 10(c)).

use crate::connectivity::ConnectivityTrace;

/// Lengths (in seconds) of maximal uninterrupted connected runs.
pub fn session_lengths(trace: &ConnectivityTrace) -> Vec<usize> {
    let mut sessions = Vec::new();
    let mut run = 0usize;
    for s in &trace.seconds {
        if s.connected {
            run += 1;
        } else if run > 0 {
            sessions.push(run);
            run = 0;
        }
    }
    if run > 0 {
        sessions.push(run);
    }
    sessions
}

/// Empirical CDF of cumulative *time spent* in sessions of at most a
/// given length — the paper's Fig. 10(c) weighs each session by its
/// duration, not its count. Returns `(length, fraction_of_time)` pairs
/// with strictly increasing lengths.
pub fn time_weighted_cdf(lengths: &[usize]) -> Vec<(usize, f64)> {
    if lengths.is_empty() {
        return Vec::new();
    }
    let mut sorted = lengths.to_vec();
    sorted.sort_unstable();
    let total: usize = sorted.iter().sum();
    let mut out: Vec<(usize, f64)> = Vec::new();
    let mut acc = 0usize;
    for &len in &sorted {
        acc += len;
        let frac = acc as f64 / total as f64;
        match out.last_mut() {
            Some(last) if last.0 == len => last.1 = frac,
            _ => out.push((len, frac)),
        }
    }
    out
}

/// The session length at which half the connected time is accumulated
/// (the "median session length" of §6.3); `None` without sessions.
pub fn median_session_length(lengths: &[usize]) -> Option<usize> {
    let cdf = time_weighted_cdf(lengths);
    cdf.into_iter().find(|&(_, f)| f >= 0.5).map(|(l, _)| l)
}

/// Probability that an uninterrupted session is longer than `length`,
/// time-weighted (the complement the paper quotes when comparing AllAP
/// against BRR at the median).
pub fn prob_longer_than(lengths: &[usize], length: usize) -> f64 {
    let cdf = time_weighted_cdf(lengths);
    if cdf.is_empty() {
        return 0.0;
    }
    let below = cdf
        .iter()
        .take_while(|&&(l, _)| l <= length)
        .last()
        .map(|&(_, f)| f)
        .unwrap_or(0.0);
    1.0 - below
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{Policy, SecondRecord};
    use crowdwifi_geo::Point;

    fn trace(flags: &[bool]) -> ConnectivityTrace {
        ConnectivityTrace {
            policy: Policy::AllAp,
            seconds: flags
                .iter()
                .map(|&connected| SecondRecord {
                    position: Point::new(0.0, 0.0),
                    best_ratio: 0.0,
                    connected,
                    handoff: false,
                })
                .collect(),
        }
    }

    #[test]
    fn session_extraction() {
        let t = trace(&[true, true, false, true, false, true, true, true]);
        assert_eq!(session_lengths(&t), vec![2, 1, 3]);
        assert_eq!(
            session_lengths(&trace(&[false, false])),
            Vec::<usize>::new()
        );
        assert_eq!(session_lengths(&trace(&[true])), vec![1]);
    }

    #[test]
    fn cdf_is_time_weighted_and_monotone() {
        let lengths = [1, 1, 2, 6];
        let cdf = time_weighted_cdf(&lengths);
        // Total time 10: lengths ≤ 1 hold 2/10, ≤ 2 hold 4/10, ≤ 6 all.
        assert_eq!(cdf, vec![(1, 0.2), (2, 0.4), (6, 1.0)]);
    }

    #[test]
    fn median_and_tail() {
        let lengths = [1, 1, 2, 6];
        assert_eq!(median_session_length(&lengths), Some(6));
        assert!((prob_longer_than(&lengths, 2) - 0.6).abs() < 1e-12);
        assert_eq!(prob_longer_than(&lengths, 6), 0.0);
        assert_eq!(prob_longer_than(&[], 3), 0.0);
        assert_eq!(median_session_length(&[]), None);
    }
}
