//! WiFi handoff policies and connectivity evaluation (§6.3).
//!
//! A user-vehicle downloads crowdsensed AP lookup results and uses them
//! to associate with roadside APs while driving. This crate simulates
//! that loop on the VanLan-like substrate:
//!
//! * [`db`] — the downloaded AP database, with controllable counting
//!   and localization error injection (the x-axes of Fig. 11),
//! * [`connectivity`] — the per-second beacon-reception simulation and
//!   the two association policies of §6.3: **BRR** (hard handoff to the
//!   AP with the best exponentially averaged beacon reception ratio)
//!   and **AllAP** (opportunistic use of every AP in the vicinity),
//! * [`session`] — uninterrupted-session extraction and the CDF of
//!   session lengths (Fig. 10(c)),
//! * [`transfer`] — 10 KB TCP-like transfers with the paper's
//!   10-second stall-restart rule (Fig. 11).

#![deny(missing_docs)]

pub mod connectivity;
pub mod db;
pub mod session;
pub mod transfer;

pub use connectivity::{ConnectivityTrace, Policy};
pub use db::ApDatabase;

/// Errors produced by the handoff simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum HandoffError {
    /// Invalid simulation parameter.
    InvalidParameter(String),
}

impl std::fmt::Display for HandoffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandoffError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
        }
    }
}

impl std::error::Error for HandoffError {}

/// Convenience alias for handoff results.
pub type Result<T> = std::result::Result<T, HandoffError>;
