//! The downloaded AP database and lookup-error injection.
//!
//! Fig. 11 evaluates connectivity under controlled counting and
//! localization errors; [`ApDatabase::perturbed`] manufactures a
//! database with exactly those error levels from the ground truth.

use crowdwifi_geo::{Point, Rect};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The AP lookup results a user-vehicle downloads from the crowd-server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApDatabase {
    entries: Vec<Point>,
}

impl ApDatabase {
    /// Wraps a list of believed AP positions.
    pub fn new(entries: Vec<Point>) -> Self {
        ApDatabase { entries }
    }

    /// The believed AP positions.
    pub fn entries(&self) -> &[Point] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Database entries the vehicle believes are within `range` of `p`.
    pub fn nearby(&self, p: Point, range: f64) -> Vec<Point> {
        self.entries
            .iter()
            .copied()
            .filter(|e| e.distance(p) <= range)
            .collect()
    }

    /// Builds a database with target counting and localization error
    /// against `truth` (the Fig. 11 x-axes):
    ///
    /// * every kept entry is displaced by `localization_error · lattice`
    ///   meters in a random direction;
    /// * `counting_error > 0` is split between the two miscounting
    ///   modes: `round(err·k/2)` real entries are dropped (undercount)
    ///   and `round(err·k/2)` ghost entries are drawn uniformly in
    ///   `area` (overcount). Negative values drop `round(|err|·k)`
    ///   random entries only.
    ///
    /// # Panics
    ///
    /// Panics if `truth` is empty or `lattice` is not positive.
    pub fn perturbed<R: Rng + ?Sized>(
        truth: &[Point],
        area: Rect,
        counting_error: f64,
        localization_error: f64,
        lattice: f64,
        rng: &mut R,
    ) -> Self {
        assert!(!truth.is_empty(), "need ground-truth APs");
        assert!(lattice > 0.0, "lattice must be positive");
        let k = truth.len();
        let mut entries: Vec<Point> = truth
            .iter()
            .map(|&p| {
                let angle = rng.random_range(0.0..std::f64::consts::TAU);
                let r = localization_error.max(0.0) * lattice;
                area.clamp(Point::new(p.x + r * angle.cos(), p.y + r * angle.sin()))
            })
            .collect();
        if counting_error > 0.0 {
            let drops = (counting_error * k as f64 / 2.0).round() as usize;
            for _ in 0..drops.min(entries.len().saturating_sub(1)) {
                let idx = rng.random_range(0..entries.len());
                entries.swap_remove(idx);
            }
            let ghosts = (counting_error * k as f64 / 2.0).round() as usize;
            for _ in 0..ghosts {
                entries.push(Point::new(
                    rng.random_range(area.min().x..area.max().x),
                    rng.random_range(area.min().y..area.max().y),
                ));
            }
        } else if counting_error < 0.0 {
            let drops = ((-counting_error) * k as f64).round() as usize;
            for _ in 0..drops.min(entries.len().saturating_sub(1)) {
                let idx = rng.random_range(0..entries.len());
                entries.swap_remove(idx);
            }
        }
        ApDatabase { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn area() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(800.0, 500.0)).unwrap()
    }

    fn truth() -> Vec<Point> {
        (0..10)
            .map(|i| Point::new(50.0 + 70.0 * i as f64, 250.0))
            .collect()
    }

    #[test]
    fn zero_error_preserves_truth() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let db = ApDatabase::perturbed(&truth(), area(), 0.0, 0.0, 8.0, &mut rng);
        assert_eq!(db.entries(), truth().as_slice());
    }

    #[test]
    fn localization_error_displaces_by_expected_radius() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = truth();
        let db = ApDatabase::perturbed(&t, area(), 0.0, 2.0, 8.0, &mut rng);
        for (orig, moved) in t.iter().zip(db.entries()) {
            let d = orig.distance(*moved);
            assert!((d - 16.0).abs() < 1e-9, "displacement {d}");
        }
    }

    #[test]
    fn counting_error_adds_or_removes() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = truth();
        // +50 %: ~2-3 dropped and ~2-3 ghosts added (count stays ~k).
        let over = ApDatabase::perturbed(&t, area(), 0.5, 0.0, 8.0, &mut rng);
        assert_eq!(over.len(), 10);
        let under = ApDatabase::perturbed(&t, area(), -0.3, 0.0, 8.0, &mut rng);
        assert_eq!(under.len(), 7);
    }

    #[test]
    fn nearby_filters_by_range() {
        let db = ApDatabase::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]);
        let near = db.nearby(Point::new(10.0, 0.0), 50.0);
        assert_eq!(near.len(), 1);
        assert!(db.nearby(Point::new(400.0, 400.0), 50.0).is_empty());
    }
}
