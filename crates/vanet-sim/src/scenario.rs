//! The four evaluation maps of the paper.

use crate::ap::AccessPoint;
use crate::{Result, SimError};
use crowdwifi_channel::{ApId, PathLossModel};
use crowdwifi_geo::{Grid, Point, Rect};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A complete simulation scenario: area, AP ground truth and channel.
///
/// # Example
///
/// ```
/// let s = crowdwifi_vanet_sim::Scenario::uci_campus();
/// assert_eq!(s.aps().len(), 8);
/// assert!((s.area().width() - 300.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    name: String,
    area: Rect,
    aps: Vec<AccessPoint>,
    pathloss: PathLossModel,
    shadow_sigma_db: f64,
}

impl Scenario {
    /// Assembles a custom scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `aps` is empty or the
    /// fading deviation is negative.
    pub fn new(
        name: impl Into<String>,
        area: Rect,
        aps: Vec<AccessPoint>,
        pathloss: PathLossModel,
        shadow_sigma_db: f64,
    ) -> Result<Self> {
        if aps.is_empty() {
            return Err(SimError::InvalidParameter("no APs in scenario".to_string()));
        }
        if !(shadow_sigma_db >= 0.0) || !shadow_sigma_db.is_finite() {
            return Err(SimError::InvalidParameter(format!(
                "shadow_sigma_db must be non-negative, got {shadow_sigma_db}"
            )));
        }
        Ok(Scenario {
            name: name.into(),
            area,
            aps,
            pathloss,
            shadow_sigma_db,
        })
    }

    /// §6.1 UCI campus simulation: 300 × 180 m, 8 APs with pairwise
    /// separation above 50 m, 100 m transmission radius, `l₀ = 45.6` dB,
    /// `γ = 1.76`, shadow σ = 0.5 dB.
    pub fn uci_campus() -> Self {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(300.0, 180.0))
            .expect("static rectangle is valid");
        let positions = [
            (45.0, 45.0),
            (45.0, 135.0),
            (110.0, 90.0),
            (150.0, 45.0),
            (150.0, 150.0),
            (215.0, 90.0),
            (255.0, 45.0),
            (255.0, 150.0),
        ];
        let aps = positions
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| AccessPoint::new(ApId(i as u32), Point::new(x, y), 100.0))
            .collect();
        Scenario {
            name: "uci-campus".to_string(),
            area,
            aps,
            pathloss: PathLossModel::uci_campus(),
            shadow_sigma_db: 0.5,
        }
    }

    /// §6.2 physical-testbed substitute: 100 × 100 m, six Open-Mesh
    /// OM1P nodes at the six named campus buildings, 30 m transmission
    /// radius, heavier fading (nodes sit inside buildings).
    pub fn testbed() -> Self {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
            .expect("static rectangle is valid");
        // Two in the Graduate Division Office, one each in Barclay
        // Theatre, Hill Bookstore, Starbucks and the Student Center.
        let positions = [
            (20.0, 70.0), // Graduate Division #1
            (30.0, 78.0), // Graduate Division #2
            (70.0, 80.0), // Irvine Barclay Theatre
            (50.0, 48.0), // The Hill Bookstore
            (80.0, 30.0), // Starbucks
            (28.0, 20.0), // UCI Student Center
        ];
        let aps = positions
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| AccessPoint::new(ApId(i as u32), Point::new(x, y), 30.0))
            .collect();
        let pathloss =
            PathLossModel::new(18.0, 45.6, 2.2, 1.0).expect("static parameters are valid");
        Scenario {
            name: "uci-testbed".to_string(),
            area,
            aps,
            pathloss,
            shadow_sigma_db: 3.0,
        }
    }

    /// §6.3 VanLan-like map: 828 × 559 m, 11 APs clustered on five
    /// "buildings" of the Microsoft campus, Atheros radios at 26.02 dBm.
    pub fn vanlan() -> Self {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(828.0, 559.0))
            .expect("static rectangle is valid");
        // Five buildings, 11 APs total (3+2+2+2+2).
        let positions = [
            (120.0, 120.0),
            (150.0, 150.0),
            (90.0, 160.0), // building 1
            (330.0, 430.0),
            (370.0, 460.0), // building 2
            (520.0, 140.0),
            (560.0, 170.0), // building 3
            (660.0, 390.0),
            (700.0, 420.0), // building 4
            (740.0, 240.0),
            (780.0, 270.0), // building 5
        ];
        let aps = positions
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| AccessPoint::new(ApId(i as u32), Point::new(x, y), 150.0))
            .collect();
        Scenario {
            name: "vanlan".to_string(),
            area,
            aps,
            pathloss: PathLossModel::vanlan(),
            shadow_sigma_db: 4.0,
        }
    }

    /// An urban Manhattan-grid scenario (extension beyond the paper's
    /// maps): `blocks × blocks` city blocks of `block_size` meters with
    /// one AP per block placed at a deterministic offset inside the
    /// block — the dense, regular deployment a downtown core would
    /// have. Use with [`crate::mobility::manhattan_route`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for zero blocks or a
    /// non-positive block size.
    pub fn manhattan(blocks: usize, block_size: f64) -> Result<Self> {
        if blocks == 0 {
            return Err(SimError::InvalidParameter(
                "need at least one block".to_string(),
            ));
        }
        if !(block_size > 0.0) || !block_size.is_finite() {
            return Err(SimError::InvalidParameter(format!(
                "block_size must be positive, got {block_size}"
            )));
        }
        let extent = blocks as f64 * block_size;
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(extent, extent))
            .map_err(|e| SimError::InvalidParameter(e.to_string()))?;
        let mut aps = Vec::with_capacity(blocks * blocks);
        for by in 0..blocks {
            for bx in 0..blocks {
                // Offset pattern varies per block so APs are not all on
                // the same corner (breaks artificial symmetry).
                let (fx, fy) = match (bx + by) % 4 {
                    0 => (0.3, 0.3),
                    1 => (0.7, 0.35),
                    2 => (0.35, 0.7),
                    _ => (0.65, 0.65),
                };
                aps.push(AccessPoint::new(
                    ApId((by * blocks + bx) as u32),
                    Point::new((bx as f64 + fx) * block_size, (by as f64 + fy) * block_size),
                    100.0,
                ));
            }
        }
        Scenario::new(
            format!("manhattan-{blocks}x{blocks}"),
            area,
            aps,
            PathLossModel::uci_campus(),
            1.0,
        )
    }

    /// §6.1 third simulation set: `k` APs placed uniformly at random in a
    /// 250 × 250 m area with a minimum pairwise separation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PlacementFailed`] if the separation constraint
    /// cannot be met after many retries (over-dense request).
    pub fn random_250<R: Rng + ?Sized>(k: usize, min_separation: f64, rng: &mut R) -> Result<Self> {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(250.0, 250.0))
            .expect("static rectangle is valid");
        let mut aps: Vec<AccessPoint> = Vec::with_capacity(k);
        let mut attempts = 0usize;
        while aps.len() < k {
            attempts += 1;
            if attempts > 10_000 {
                return Err(SimError::PlacementFailed {
                    placed: aps.len(),
                    requested: k,
                });
            }
            let candidate = Point::new(
                rng.random_range(area.min().x..area.max().x),
                rng.random_range(area.min().y..area.max().y),
            );
            if aps
                .iter()
                .all(|ap| ap.position.distance(candidate) >= min_separation)
            {
                aps.push(AccessPoint::new(ApId(aps.len() as u32), candidate, 100.0));
            }
        }
        Scenario::new(
            format!("random-250-k{k}"),
            area,
            aps,
            PathLossModel::uci_campus(),
            0.5,
        )
    }

    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The simulated area.
    pub fn area(&self) -> Rect {
        self.area
    }

    /// Ground-truth APs.
    pub fn aps(&self) -> &[AccessPoint] {
        &self.aps
    }

    /// Ground-truth AP positions, in id order.
    pub fn ap_positions(&self) -> Vec<Point> {
        self.aps.iter().map(|ap| ap.position).collect()
    }

    /// The channel model.
    pub fn pathloss(&self) -> &PathLossModel {
        &self.pathloss
    }

    /// Shadow-fading standard deviation in dB.
    pub fn shadow_sigma_db(&self) -> f64 {
        self.shadow_sigma_db
    }

    /// Returns a copy with every AP snapped to the nearest point of
    /// `grid` — the paper's first simulation set places the 8 APs
    /// *exactly on grid points*.
    pub fn snapped_to_grid(&self, grid: &Grid) -> Scenario {
        let mut out = self.clone();
        for ap in out.aps.iter_mut() {
            ap.position = grid.point(grid.nearest_index(ap.position));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uci_has_paper_parameters() {
        let s = Scenario::uci_campus();
        assert_eq!(s.aps().len(), 8);
        assert!((s.area().width() - 300.0).abs() < 1e-12);
        assert!((s.area().height() - 180.0).abs() < 1e-12);
        assert_eq!(s.shadow_sigma_db(), 0.5);
        assert_eq!(s.pathloss().ref_loss_db(), 45.6);
        // Pairwise separation > 50 m and radius 100 m.
        for (i, a) in s.aps().iter().enumerate() {
            assert_eq!(a.tx_radius, 100.0);
            for b in &s.aps()[i + 1..] {
                assert!(
                    a.position.distance(b.position) > 50.0,
                    "APs {a:?} and {b:?} too close"
                );
            }
        }
    }

    #[test]
    fn testbed_has_six_nodes_with_30m_radius() {
        let s = Scenario::testbed();
        assert_eq!(s.aps().len(), 6);
        assert!(s.aps().iter().all(|ap| ap.tx_radius == 30.0));
        assert!(s.aps().iter().all(|ap| s.area().contains(ap.position)));
    }

    #[test]
    fn vanlan_has_eleven_aps() {
        let s = Scenario::vanlan();
        assert_eq!(s.aps().len(), 11);
        assert_eq!(s.pathloss().tx_power_dbm(), 26.02);
        assert!((s.area().width() - 828.0).abs() < 1e-12);
        assert!((s.area().height() - 559.0).abs() < 1e-12);
    }

    #[test]
    fn random_scenario_respects_separation() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let s = Scenario::random_250(40, 20.0, &mut rng).unwrap();
        assert_eq!(s.aps().len(), 40);
        for (i, a) in s.aps().iter().enumerate() {
            for b in &s.aps()[i + 1..] {
                assert!(a.position.distance(b.position) >= 20.0);
            }
        }
    }

    #[test]
    fn impossible_density_fails_cleanly() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // 100 APs at 200 m separation cannot fit in 250 × 250.
        assert!(matches!(
            Scenario::random_250(100, 200.0, &mut rng),
            Err(SimError::PlacementFailed { .. })
        ));
    }

    #[test]
    fn manhattan_layout() {
        let s = Scenario::manhattan(3, 80.0).unwrap();
        assert_eq!(s.aps().len(), 9);
        assert!((s.area().width() - 240.0).abs() < 1e-9);
        for ap in s.aps() {
            assert!(s.area().contains(ap.position));
        }
        assert!(Scenario::manhattan(0, 80.0).is_err());
        assert!(Scenario::manhattan(2, 0.0).is_err());
    }

    #[test]
    fn grid_snapping_moves_aps_onto_lattice() {
        let s = Scenario::uci_campus();
        let grid = Grid::new(s.area(), 8.0).unwrap();
        let snapped = s.snapped_to_grid(&grid);
        for ap in snapped.aps() {
            let idx = grid.nearest_index(ap.position);
            assert_eq!(grid.point(idx), ap.position);
        }
    }

    #[test]
    fn empty_scenario_rejected() {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap();
        assert!(Scenario::new("x", area, vec![], PathLossModel::uci_campus(), 0.5).is_err());
    }
}
