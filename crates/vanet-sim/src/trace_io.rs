//! Persisting RSS traces to disk.
//!
//! A crowd-vehicle's drive (or a whole VanLan-style campaign) can be
//! saved as CSV and replayed later — the project's stand-in for working
//! with recorded datasets. The format is a plain header + one row per
//! reading:
//!
//! ```csv
//! x,y,rss_dbm,time,source
//! 12.500,20.000,-57.31,4.200,3
//! 16.500,20.000,-58.02,4.700,
//! ```
//!
//! `source` is empty for blind readings. Hand-rolled (no CSV crate) —
//! the format is fixed and simple.

use crowdwifi_channel::{ApId, RssReading};
use crowdwifi_geo::Point;
use std::io::{BufRead, Write};

/// Errors produced by trace (de)serialization.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A row could not be parsed.
    Parse {
        /// 1-based line number (header is line 1).
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The header row is missing or wrong.
    BadHeader(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O failure: {e}"),
            TraceIoError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
            TraceIoError::BadHeader(h) => write!(f, "unexpected trace header: {h:?}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

const HEADER: &str = "x,y,rss_dbm,time,source";

/// Writes readings as CSV.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_csv<W: Write>(readings: &[RssReading], mut w: W) -> Result<(), TraceIoError> {
    writeln!(w, "{HEADER}")?;
    for r in readings {
        let source = r.source.map(|s| s.0.to_string()).unwrap_or_default();
        writeln!(
            w,
            "{:.3},{:.3},{:.3},{:.3},{}",
            r.position.x, r.position.y, r.rss_dbm, r.time, source
        )?;
    }
    Ok(())
}

/// Reads a CSV trace produced by [`write_csv`].
///
/// # Errors
///
/// Returns [`TraceIoError::BadHeader`] when the first line is not the
/// expected header and [`TraceIoError::Parse`] with a line number for
/// malformed rows.
pub fn read_csv<R: BufRead>(r: R) -> Result<Vec<RssReading>, TraceIoError> {
    let mut lines = r.lines();
    match lines.next() {
        Some(Ok(h)) if h.trim() == HEADER => {}
        Some(Ok(h)) => return Err(TraceIoError::BadHeader(h)),
        Some(Err(e)) => return Err(TraceIoError::Io(e)),
        None => return Err(TraceIoError::BadHeader(String::new())),
    }
    let mut out = Vec::new();
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(TraceIoError::Parse {
                line: line_no,
                reason: format!("expected 5 fields, found {}", fields.len()),
            });
        }
        let parse_f64 = |s: &str, name: &str| -> Result<f64, TraceIoError> {
            s.trim().parse::<f64>().map_err(|e| TraceIoError::Parse {
                line: line_no,
                reason: format!("bad {name} {s:?}: {e}"),
            })
        };
        let x = parse_f64(fields[0], "x")?;
        let y = parse_f64(fields[1], "y")?;
        let rss = parse_f64(fields[2], "rss_dbm")?;
        let time = parse_f64(fields[3], "time")?;
        if !(x.is_finite() && y.is_finite() && rss.is_finite() && time.is_finite()) {
            return Err(TraceIoError::Parse {
                line: line_no,
                reason: "non-finite value".to_string(),
            });
        }
        let source = match fields[4].trim() {
            "" => None,
            s => Some(ApId(s.parse::<u32>().map_err(|e| TraceIoError::Parse {
                line: line_no,
                reason: format!("bad source {s:?}: {e}"),
            })?)),
        };
        out.push(RssReading {
            position: Point::new(x, y),
            rss_dbm: rss,
            time,
            source,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mobility, RssCollector, Scenario};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_readings() -> Vec<RssReading> {
        let scenario = Scenario::uci_campus();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        RssCollector::new(&scenario).collect_along(
            &mobility::uci_loop_route_with(1, 25.0),
            2.0,
            &mut rng,
        )
    }

    #[test]
    fn roundtrip_preserves_readings() {
        let readings = sample_readings();
        let mut buf = Vec::new();
        write_csv(&readings, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), readings.len());
        for (a, b) in readings.iter().zip(&back) {
            assert!((a.position.x - b.position.x).abs() < 1e-3);
            assert!((a.rss_dbm - b.rss_dbm).abs() < 1e-3);
            assert!((a.time - b.time).abs() < 1e-3);
            assert_eq!(a.source, b.source);
        }
    }

    #[test]
    fn blind_readings_roundtrip_without_source() {
        let readings = vec![RssReading::new(Point::new(1.0, 2.0), -60.5, 3.0)];
        let mut buf = Vec::new();
        write_csv(&readings, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back[0].source, None);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            read_csv("lat,lon\n".as_bytes()),
            Err(TraceIoError::BadHeader(_))
        ));
        assert!(matches!(
            read_csv("".as_bytes()),
            Err(TraceIoError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_malformed_rows_with_line_numbers() {
        let data = format!("{HEADER}\n1.0,2.0,-60.0,0.0,\nnot,a,valid,row\n");
        match read_csv(data.as_bytes()) {
            Err(TraceIoError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        let nan = format!("{HEADER}\nNaN,2.0,-60.0,0.0,\n");
        assert!(matches!(
            read_csv(nan.as_bytes()),
            Err(TraceIoError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let data = format!("{HEADER}\n1.0,2.0,-60.0,0.0,7\n\n");
        let back = read_csv(data.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].source, Some(ApId(7)));
    }
}
