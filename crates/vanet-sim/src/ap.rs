//! Roadside access points.

use crowdwifi_channel::ApId;
use crowdwifi_geo::Point;
use serde::{Deserialize, Serialize};

/// A fixed roadside WiFi access point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessPoint {
    /// Stable identifier (BSSID stand-in).
    pub id: ApId,
    /// Ground-truth position in the scenario frame.
    pub position: Point,
    /// Effective transmission radius in meters; a collector farther away
    /// hears nothing from this AP.
    pub tx_radius: f64,
}

impl AccessPoint {
    /// Creates an AP.
    ///
    /// # Panics
    ///
    /// Panics if `tx_radius` is not positive and finite.
    pub fn new(id: ApId, position: Point, tx_radius: f64) -> Self {
        assert!(
            tx_radius > 0.0 && tx_radius.is_finite(),
            "tx_radius must be positive and finite"
        );
        AccessPoint {
            id,
            position,
            tx_radius,
        }
    }

    /// Whether a collector at `p` is within radio range.
    pub fn covers(&self, p: Point) -> bool {
        self.position.distance(p) <= self.tx_radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_boundary_inclusive() {
        let ap = AccessPoint::new(ApId(0), Point::new(0.0, 0.0), 30.0);
        assert!(ap.covers(Point::new(30.0, 0.0)));
        assert!(!ap.covers(Point::new(30.1, 0.0)));
    }

    #[test]
    #[should_panic(expected = "tx_radius")]
    fn zero_radius_rejected() {
        AccessPoint::new(ApId(0), Point::new(0.0, 0.0), 0.0);
    }
}
