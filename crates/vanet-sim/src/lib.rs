//! Vehicular-network simulator substrate.
//!
//! The paper evaluates CrowdWiFi with the NCTUns v5.0 simulator, a
//! physical UCI testbed and Microsoft's VanLan traces — none of which are
//! available. This crate is the substitute: it generates `(position,
//! RSS, time)` streams with exactly the channel parameters the paper
//! reports, which is all the CrowdWiFi algorithms ever consume.
//!
//! * [`ap`] — roadside access points,
//! * [`scenario`] — the four evaluation maps (UCI campus §6.1, random
//!   250×250 m §6.1, physical testbed §6.2, VanLan §6.3),
//! * [`mobility`] — route builders (campus loop, lawnmower sweep,
//!   straight passes, van rounds),
//! * [`collector`] — the drive-by RSS collector (one reading at a time,
//!   source chosen by signal strength, log-normal fading applied),
//! * [`vanlan`] — the VanLan-like beacon trace generator for the handoff
//!   experiments,
//! * [`trace_io`] — CSV persistence for recorded drives.
//!
//! # Example
//!
//! ```
//! use crowdwifi_vanet_sim::{scenario::Scenario, collector::RssCollector};
//! use rand::SeedableRng;
//!
//! let scenario = Scenario::uci_campus();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let route = crowdwifi_vanet_sim::mobility::uci_loop_route();
//! let readings = RssCollector::new(&scenario)
//!     .collect_along(&route, 1.0, &mut rng);
//! assert!(!readings.is_empty());
//! ```

#![deny(missing_docs)]
// `!(x > 0.0)` style guards are used deliberately throughout: unlike
// `x <= 0.0`, they also reject NaN, which is exactly what parameter
// validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod ap;
pub mod collector;
pub mod mobility;
pub mod scenario;
pub mod trace_io;
pub mod vanlan;

pub use ap::AccessPoint;
pub use collector::RssCollector;
pub use scenario::Scenario;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Could not place the requested number of APs under the separation
    /// constraint.
    PlacementFailed {
        /// APs successfully placed before giving up.
        placed: usize,
        /// APs requested.
        requested: usize,
    },
    /// Invalid scenario parameter.
    InvalidParameter(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::PlacementFailed { placed, requested } => write!(
                f,
                "could only place {placed} of {requested} APs under the separation constraint"
            ),
            SimError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias for simulator results.
pub type Result<T> = std::result::Result<T, SimError>;

/// Converts miles per hour to meters per second (the paper quotes vehicle
/// speeds in mph).
pub fn mph_to_mps(mph: f64) -> f64 {
    mph * 0.44704
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mph_conversion() {
        assert!((mph_to_mps(25.0) - 11.176).abs() < 1e-9);
        assert!((mph_to_mps(45.0) - 20.1168).abs() < 1e-9);
    }
}
