//! Route builders for the evaluation drives.

use crate::mph_to_mps;
use crowdwifi_geo::{Point, Rect, Trajectory};

/// The campus loop of Fig. 5(a): a rectangle-ish circuit around the
/// 300 × 180 m UCI map at 25 mph, repeated three times so the collector
/// can gather the paper's 180 RSS samples at 1 Hz.
pub fn uci_loop_route() -> Trajectory {
    uci_loop_route_with(3, 25.0)
}

/// The campus loop with explicit lap count and speed (mph).
///
/// # Panics
///
/// Panics if `laps == 0` or the speed is not positive.
pub fn uci_loop_route_with(laps: usize, speed_mph: f64) -> Trajectory {
    assert!(laps > 0, "need at least one lap");
    // A winding coverage circuit (like the paper's Fig. 5(a) path): four
    // west–east sweeps with edge connectors, so every campus AP is
    // passed on *both* sides. Two-sided passes matter: an AP seen only
    // from one straight road segment leaves a mirror ambiguity about
    // which side of the road it is on.
    let circuit = [
        Point::new(20.0, 20.0),
        Point::new(280.0, 20.0),
        Point::new(280.0, 65.0),
        Point::new(20.0, 65.0),
        Point::new(20.0, 115.0),
        Point::new(280.0, 115.0),
        Point::new(280.0, 160.0),
        Point::new(20.0, 160.0),
    ];
    let mut path: Vec<Point> = Vec::new();
    for lap in 0..laps {
        if lap == 0 {
            path.extend_from_slice(&circuit);
        } else {
            // Close the loop back to the start, then repeat (skip the
            // duplicated first point).
            path.push(circuit[0]);
            path.extend_from_slice(&circuit[1..]);
        }
    }
    Trajectory::with_constant_speed(&path, mph_to_mps(speed_mph)).expect("static route is valid")
}

/// A lawnmower (boustrophedon) sweep over `area` with the given row
/// `spacing`, driven at `speed_mph`. Used for the 250 × 250 m random
/// scenarios where the whole area must be covered.
///
/// # Panics
///
/// Panics if `spacing` or `speed_mph` is not positive.
pub fn lawnmower_route(area: Rect, spacing: f64, speed_mph: f64) -> Trajectory {
    assert!(spacing > 0.0, "spacing must be positive");
    assert!(speed_mph > 0.0, "speed must be positive");
    let inset = spacing.min(area.width() / 10.0).min(area.height() / 10.0);
    let x0 = area.min().x + inset;
    let x1 = area.max().x - inset;
    let mut path = Vec::new();
    let mut y = area.min().y + inset;
    let mut leftward = false;
    while y <= area.max().y - inset + 1e-9 {
        let (xa, xb) = if leftward { (x1, x0) } else { (x0, x1) };
        path.push(Point::new(xa, y));
        path.push(Point::new(xb, y));
        leftward = !leftward;
        y += spacing;
    }
    Trajectory::with_constant_speed(&path, mph_to_mps(speed_mph)).expect("sweep route is valid")
}

/// A vertical (north–south) lawnmower sweep — the transpose of
/// [`lawnmower_route`], used to give different crowd-vehicles different
/// viewing geometry over the same area.
///
/// # Panics
///
/// Panics if `spacing` or `speed_mph` is not positive.
pub fn lawnmower_route_vertical(area: Rect, spacing: f64, speed_mph: f64) -> Trajectory {
    assert!(spacing > 0.0, "spacing must be positive");
    assert!(speed_mph > 0.0, "speed must be positive");
    let inset = spacing.min(area.width() / 10.0).min(area.height() / 10.0);
    let y0 = area.min().y + inset;
    let y1 = area.max().y - inset;
    let mut path = Vec::new();
    let mut x = area.min().x + inset;
    let mut downward = false;
    while x <= area.max().x - inset + 1e-9 {
        let (ya, yb) = if downward { (y1, y0) } else { (y0, y1) };
        path.push(Point::new(x, ya));
        path.push(Point::new(x, yb));
        downward = !downward;
        x += spacing;
    }
    Trajectory::with_constant_speed(&path, mph_to_mps(speed_mph)).expect("sweep route is valid")
}

/// Straight drive-by passes across the testbed area (§6.2): `passes`
/// horizontal streets at evenly spaced heights, driven at `speed_mph`
/// (the experiment used 20, 35 and 45 mph).
///
/// # Panics
///
/// Panics if `passes == 0` or the speed is not positive.
pub fn testbed_passes(area: Rect, passes: usize, speed_mph: f64) -> Trajectory {
    assert!(passes > 0, "need at least one pass");
    assert!(speed_mph > 0.0, "speed must be positive");
    let mut path = Vec::new();
    let step = area.height() / (passes as f64 + 1.0);
    let mut leftward = false;
    for i in 1..=passes {
        let y = area.min().y + step * i as f64;
        let (xa, xb) = if leftward {
            (area.max().x, area.min().x)
        } else {
            (area.min().x, area.max().x)
        };
        path.push(Point::new(xa, y));
        path.push(Point::new(xb, y));
        leftward = !leftward;
    }
    Trajectory::with_constant_speed(&path, mph_to_mps(speed_mph)).expect("pass route is valid")
}

/// A snake drive through every east–west street of a Manhattan grid
/// (see [`crate::scenario::Scenario::manhattan`]): streets run along
/// block boundaries, so every block's AP is passed on two sides.
///
/// # Panics
///
/// Panics if `blocks == 0` or sizes/speeds are not positive.
pub fn manhattan_route(blocks: usize, block_size: f64, speed_mph: f64) -> Trajectory {
    assert!(blocks > 0, "need at least one block");
    assert!(block_size > 0.0, "block_size must be positive");
    assert!(speed_mph > 0.0, "speed must be positive");
    let extent = blocks as f64 * block_size;
    let inset = block_size * 0.05;
    let mut path = Vec::new();
    let mut leftward = false;
    // Drive every street y = k·block_size (clamped just inside the map).
    for k in 0..=blocks {
        let y = (k as f64 * block_size).clamp(inset, extent - inset);
        let (xa, xb) = if leftward {
            (extent - inset, inset)
        } else {
            (inset, extent - inset)
        };
        path.push(Point::new(xa, y));
        path.push(Point::new(xb, y));
        leftward = !leftward;
    }
    Trajectory::with_constant_speed(&path, mph_to_mps(speed_mph)).expect("snake route is valid")
}

/// A van round through the five VanLan building clusters at 25 mph
/// (§6.3), optionally offset sideways so two vans don't share a lane.
pub fn vanlan_round(lane_offset: f64) -> Trajectory {
    let stops = [
        Point::new(60.0 + lane_offset, 60.0),
        Point::new(160.0 + lane_offset, 180.0),
        Point::new(340.0 + lane_offset, 400.0),
        Point::new(500.0 + lane_offset, 200.0),
        Point::new(680.0 + lane_offset, 360.0),
        Point::new(760.0 + lane_offset, 220.0),
        Point::new(400.0 + lane_offset, 80.0),
        Point::new(60.0 + lane_offset, 60.0),
    ];
    Trajectory::with_constant_speed(&stops, mph_to_mps(25.0)).expect("van route is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uci_loop_repeats_laps() {
        let one = uci_loop_route_with(1, 25.0);
        let three = uci_loop_route_with(3, 25.0);
        assert!(three.length() > 2.9 * one.length());
        // 180 one-second samples must fit inside the default route.
        assert!(uci_loop_route().duration() > 180.0);
    }

    #[test]
    fn uci_loop_stays_on_map() {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(300.0, 180.0)).unwrap();
        for w in uci_loop_route().waypoints() {
            assert!(area.contains(w.position), "waypoint {w:?} off map");
        }
    }

    #[test]
    fn lawnmower_covers_rows() {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(250.0, 250.0)).unwrap();
        let t = lawnmower_route(area, 40.0, 25.0);
        // All waypoints inside the area.
        for w in t.waypoints() {
            assert!(area.contains(w.position));
        }
        // Sweep must span most of the vertical extent.
        let ys: Vec<f64> = t.waypoints().iter().map(|w| w.position.y).collect();
        let span = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - ys.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(span > 150.0);
    }

    #[test]
    fn faster_speed_means_shorter_duration() {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
        let slow = testbed_passes(area, 3, 20.0);
        let fast = testbed_passes(area, 3, 45.0);
        assert!((slow.length() - fast.length()).abs() < 1e-9);
        assert!(fast.duration() < slow.duration());
    }

    #[test]
    fn manhattan_route_covers_all_streets() {
        let t = manhattan_route(3, 80.0, 25.0);
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(240.0, 240.0)).unwrap();
        for w in t.waypoints() {
            assert!(area.contains(w.position));
        }
        // 4 streets × 2 endpoints.
        assert_eq!(t.waypoints().len(), 8);
    }

    #[test]
    fn vanlan_round_is_closed() {
        let t = vanlan_round(0.0);
        let w = t.waypoints();
        assert_eq!(w[0].position, w[w.len() - 1].position);
    }
}
