//! VanLan-like beacon trace generation (§6.3 substitute).
//!
//! The real VanLan dataset (Microsoft Research) logged beacon receptions
//! between 11 campus APs and 2 vans. This module synthesizes an
//! equivalent trace: both vans repeatedly drive their rounds while every
//! AP broadcasts a 500-byte beacon at 1 Mbps every 100 ms; the van logs
//! an RSS row for each beacon it successfully receives. The paper's
//! experiment then subsamples 300 RSS rows for the lookup evaluation.

use crate::collector::RssCollector;
use crate::mobility::vanlan_round;
use crate::scenario::Scenario;
use crowdwifi_channel::noise::ShadowFading;
use crowdwifi_channel::RssReading;
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration of the VanLan-like trace generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VanLanConfig {
    /// Beacon period in seconds (paper: one 500-byte packet every 100 ms).
    pub beacon_interval: f64,
    /// Number of vans (paper: 2).
    pub vans: usize,
    /// Rounds each van drives (paper: ~10 region visits per day).
    pub rounds: usize,
}

impl Default for VanLanConfig {
    fn default() -> Self {
        VanLanConfig {
            beacon_interval: 0.1,
            vans: 2,
            rounds: 10,
        }
    }
}

/// A generated VanLan-like trace.
#[derive(Debug, Clone)]
pub struct VanLanTrace {
    /// All beacon receptions, in time order per van, vans concatenated.
    pub readings: Vec<RssReading>,
    /// Which van logged each reading (parallel to `readings`).
    pub van_of_reading: Vec<usize>,
}

impl VanLanTrace {
    /// Generates a trace over the [`Scenario::vanlan`] map.
    ///
    /// # Panics
    ///
    /// Panics if `config.vans == 0` or `config.rounds == 0`.
    pub fn generate<R: Rng + ?Sized>(config: VanLanConfig, rng: &mut R) -> Self {
        assert!(config.vans > 0 && config.rounds > 0, "need vans and rounds");
        let scenario = Scenario::vanlan();
        let collector = RssCollector::new(&scenario);
        let mut readings = Vec::new();
        let mut van_of_reading = Vec::new();
        for van in 0..config.vans {
            // Offset lanes so the two vans see slightly different
            // geometry, like distinct physical vehicles would.
            let route = vanlan_round(8.0 * van as f64);
            for round in 0..config.rounds {
                let t_offset = round as f64 * (route.duration() + 60.0);
                for w in route.sample(config.beacon_interval) {
                    if let Some(mut r) = collector.sample_at(w.position, w.time + t_offset, rng) {
                        // Beacon loss: reception degrades with weaker
                        // signal (bursty fading is handled by the
                        // per-sample shadowing).
                        if rng.random_range(0.0..1.0) < reception_probability(r.rss_dbm) {
                            r.time = w.time + t_offset;
                            readings.push(r);
                            van_of_reading.push(van);
                        }
                    }
                }
            }
        }
        VanLanTrace {
            readings,
            van_of_reading,
        }
    }

    /// Number of logged RSS rows.
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// Readings logged by one van, in time order.
    pub fn van_readings(&self, van: usize) -> Vec<RssReading> {
        self.readings
            .iter()
            .zip(&self.van_of_reading)
            .filter(|&(_, &v)| v == van)
            .map(|(r, _)| *r)
            .collect()
    }

    /// Uniformly subsamples `n` readings (the paper evaluates lookup on
    /// 300 of the 12544 rows), returned in global time order.
    pub fn subsample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<RssReading> {
        let mut chosen: Vec<RssReading> = if n >= self.readings.len() {
            self.readings.clone()
        } else {
            let mut idx: Vec<usize> = (0..self.readings.len()).collect();
            idx.shuffle(rng);
            idx.into_iter().take(n).map(|i| self.readings[i]).collect()
        };
        chosen.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        chosen
    }
}

/// Probability that a beacon at the given RSS is successfully decoded:
/// a smooth ramp from 0 at −90 dBm to 1 at −55 dBm, mimicking the
/// bursty, distance-graded loss VanLan reports — mid-range links lose a
/// substantial fraction of their packets, which is what separates a
/// hard-handoff policy stuck on one AP from an opportunistic one.
pub fn reception_probability(rss_dbm: f64) -> f64 {
    let x = (rss_dbm + 90.0) / 35.0; // 0 at -90, 1 at -55
    x.clamp(0.0, 1.0).powf(1.2)
}

/// Log-normal-faded RSS helper shared with the handoff crate: mean RSS
/// from the scenario channel plus one fading draw.
pub fn faded_rss<R: Rng + ?Sized>(
    scenario: &Scenario,
    ap_index: usize,
    van_position: crowdwifi_geo::Point,
    rng: &mut R,
) -> f64 {
    let ap = &scenario.aps()[ap_index];
    let d = ap.position.distance(van_position);
    let fading = ShadowFading::new(scenario.shadow_sigma_db());
    scenario.pathloss().mean_rss(d) + fading.sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn trace_has_thousands_of_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let trace = VanLanTrace::generate(VanLanConfig::default(), &mut rng);
        // The real dataset has 12544 rows; ours should be the same order
        // of magnitude.
        assert!(
            trace.len() > 4_000,
            "trace too sparse: {} rows",
            trace.len()
        );
        assert_eq!(trace.readings.len(), trace.van_of_reading.len());
    }

    #[test]
    fn both_vans_contribute() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let trace = VanLanTrace::generate(VanLanConfig::default(), &mut rng);
        assert!(!trace.van_readings(0).is_empty());
        assert!(!trace.van_readings(1).is_empty());
    }

    #[test]
    fn subsample_is_time_ordered_and_sized() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let trace = VanLanTrace::generate(
            VanLanConfig {
                rounds: 2,
                ..VanLanConfig::default()
            },
            &mut rng,
        );
        let sub = trace.subsample(300, &mut rng);
        assert_eq!(sub.len(), 300);
        for w in sub.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Asking for more than available returns everything.
        let all = trace.subsample(usize::MAX, &mut rng);
        assert_eq!(all.len(), trace.len());
    }

    #[test]
    fn reception_probability_is_monotone() {
        let mut prev = -0.1;
        for rss in (-100..-60).map(|x| x as f64) {
            let p = reception_probability(rss);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev);
            prev = p;
        }
        assert_eq!(reception_probability(-95.0), 0.0);
        assert_eq!(reception_probability(-55.0), 1.0);
        let mid = reception_probability(-70.0);
        assert!(mid > 0.3 && mid < 0.8, "mid-range p {mid}");
    }
}
