//! The drive-by RSS collector.
//!
//! §4.2.2: "the vehicle only can receive one RSS measurement at a time" —
//! each sampling instant yields at most one reading, from one AP. Which
//! AP is heard follows the paper's myopic model: the probability of
//! hearing AP `j` from position `p` is the softmax of `−d_j` over the
//! in-range APs (nearer APs dominate), matching the `w_ij` weights that
//! the GMM likelihood assumes.

use crate::scenario::Scenario;
use crowdwifi_channel::noise::ShadowFading;
use crowdwifi_channel::RssReading;
use crowdwifi_geo::{Point, Trajectory};
use rand::Rng;

/// Samples RSS readings along a drive through a [`Scenario`].
///
/// # Example
///
/// ```
/// use crowdwifi_vanet_sim::{mobility, RssCollector, Scenario};
/// use rand::SeedableRng;
///
/// let scenario = Scenario::uci_campus();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let readings = RssCollector::new(&scenario)
///     .collect_along(&mobility::uci_loop_route(), 1.0, &mut rng);
/// // The loop passes near every AP: almost all sources should be heard.
/// let mut sources: Vec<_> = readings.iter().filter_map(|r| r.source).collect();
/// sources.sort(); sources.dedup();
/// assert!(sources.len() >= 6);
/// ```
#[derive(Debug, Clone)]
pub struct RssCollector<'a> {
    scenario: &'a Scenario,
    fading: ShadowFading,
    detection_floor_dbm: f64,
}

impl<'a> RssCollector<'a> {
    /// Creates a collector using the scenario's own fading parameters and
    /// a −95 dBm detection floor (typical 802.11b/g sensitivity).
    pub fn new(scenario: &'a Scenario) -> Self {
        RssCollector {
            scenario,
            fading: ShadowFading::new(scenario.shadow_sigma_db()),
            detection_floor_dbm: -95.0,
        }
    }

    /// Overrides the detection floor in dBm.
    pub fn with_detection_floor(mut self, floor_dbm: f64) -> Self {
        self.detection_floor_dbm = floor_dbm;
        self
    }

    /// Disables shadow fading (deterministic channel), useful in tests.
    pub fn without_fading(mut self) -> Self {
        self.fading = ShadowFading::none();
        self
    }

    /// Takes at most one reading at position `p`, time `t`.
    ///
    /// Returns `None` when no AP is in radio range or the faded signal
    /// falls below the detection floor.
    pub fn sample_at<R: Rng + ?Sized>(&self, p: Point, t: f64, rng: &mut R) -> Option<RssReading> {
        // In-range candidates with their distances.
        let candidates: Vec<(usize, f64)> = self
            .scenario
            .aps()
            .iter()
            .enumerate()
            .filter(|(_, ap)| ap.covers(p))
            .map(|(i, ap)| (i, ap.position.distance(p)))
            .collect();
        if candidates.is_empty() {
            return None;
        }

        // Myopic source selection: softmax over −d (max-shifted).
        let dmin = candidates
            .iter()
            .map(|&(_, d)| d)
            .fold(f64::INFINITY, f64::min);
        let weights: Vec<f64> = candidates
            .iter()
            .map(|&(_, d)| (-(d - dmin)).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.random_range(0.0..total);
        let mut chosen = candidates.len() - 1;
        for (i, &w) in weights.iter().enumerate() {
            if pick < w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        let (ap_idx, dist) = candidates[chosen];
        let ap = &self.scenario.aps()[ap_idx];

        let rss = self.scenario.pathloss().mean_rss(dist) + self.fading.sample(rng);
        if rss < self.detection_floor_dbm {
            return None;
        }
        Some(RssReading::with_source(p, rss, t, ap.id))
    }

    /// Collects readings along a trajectory at a fixed sampling
    /// `interval` (seconds), skipping instants where nothing is heard.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn collect_along<R: Rng + ?Sized>(
        &self,
        trajectory: &Trajectory,
        interval: f64,
        rng: &mut R,
    ) -> Vec<RssReading> {
        assert!(interval > 0.0, "sampling interval must be positive");
        trajectory
            .sample(interval)
            .into_iter()
            .filter_map(|w| self.sample_at(w.position, w.time, rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn out_of_range_position_hears_nothing() {
        let s = Scenario::testbed(); // 30 m radius nodes
        let c = RssCollector::new(&s);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Far corner, > 30 m from every node.
        assert!(c.sample_at(Point::new(0.0, 100.0), 0.0, &mut rng).is_none());
    }

    #[test]
    fn nearest_ap_dominates_source_selection() {
        let s = Scenario::uci_campus();
        let c = RssCollector::new(&s);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // Standing right next to AP 0 at (45, 45).
        let mut histogram = std::collections::HashMap::new();
        for i in 0..200 {
            if let Some(r) = c.sample_at(Point::new(46.0, 45.0), i as f64, &mut rng) {
                *histogram.entry(r.source.unwrap()).or_insert(0usize) += 1;
            }
        }
        let ap0 = histogram
            .get(&crowdwifi_channel::ApId(0))
            .copied()
            .unwrap_or(0);
        assert!(ap0 > 190, "AP0 should dominate, histogram {histogram:?}");
    }

    #[test]
    fn fading_free_rss_matches_model() {
        let s = Scenario::uci_campus();
        let c = RssCollector::new(&s).without_fading();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = Point::new(46.0, 45.0);
        let r = c.sample_at(p, 0.0, &mut rng).unwrap();
        let expected = s.pathloss().mean_rss(s.aps()[0].position.distance(p));
        assert!((r.rss_dbm - expected).abs() < 1e-9);
    }

    #[test]
    fn detection_floor_filters_weak_signals() {
        let s = Scenario::uci_campus();
        let strict = RssCollector::new(&s).with_detection_floor(0.0); // impossible floor
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(strict
            .sample_at(Point::new(46.0, 45.0), 0.0, &mut rng)
            .is_none());
    }

    #[test]
    fn trajectory_collection_is_time_ordered() {
        let s = Scenario::uci_campus();
        let c = RssCollector::new(&s);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let readings = c.collect_along(&mobility::uci_loop_route(), 1.0, &mut rng);
        assert!(readings.len() > 100, "loop should hear plenty of beacons");
        for pair in readings.windows(2) {
            assert!(pair[0].time < pair[1].time);
        }
    }
}
