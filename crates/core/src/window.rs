//! Sliding-window RSS reading with TTL expiry (§4.3.2).
//!
//! The collector gathers a growing sequence of readings; CrowdWiFi
//! estimates over a window of the most recent `s` readings, advancing by
//! a step of `q` new readings per round:
//! `R_n = { r_{q(n−1)+1}, …, r_{q(n−1)+s} }`. Readings older than their
//! TTL are expired and never enter a window.

use crate::{CoreError, Result};
use crowdwifi_channel::RssReading;

/// Sliding-window parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Window length `s` in readings (paper: 60 in the UCI simulation).
    pub size: usize,
    /// Iteration step `q` in readings (paper: 10).
    pub step: usize,
    /// Time-to-live in seconds; older readings are discarded. Use
    /// `f64::INFINITY` to disable expiry.
    pub ttl: f64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            size: 60,
            step: 10,
            ttl: f64::INFINITY,
        }
    }
}

impl WindowConfig {
    /// Validates the invariant `0 < step ≤ size` and a positive TTL.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on violation.
    pub fn validate(&self) -> Result<()> {
        if self.size == 0 {
            return Err(CoreError::InvalidConfig {
                field: "window.size",
                reason: "must be positive".to_string(),
            });
        }
        if self.step == 0 || self.step > self.size {
            return Err(CoreError::InvalidConfig {
                field: "window.step",
                reason: format!("must satisfy 0 < step ≤ size, got {}", self.step),
            });
        }
        if !(self.ttl > 0.0) {
            return Err(CoreError::InvalidConfig {
                field: "window.ttl",
                reason: format!("must be positive, got {}", self.ttl),
            });
        }
        Ok(())
    }
}

/// Streaming sliding window: push readings one at a time and receive a
/// round's worth of input whenever `step` fresh readings have arrived.
///
/// # Example
///
/// ```
/// use crowdwifi_core::window::{SlidingWindow, WindowConfig};
/// use crowdwifi_channel::RssReading;
/// use crowdwifi_geo::Point;
///
/// let mut w = SlidingWindow::new(WindowConfig { size: 4, step: 2, ttl: f64::INFINITY })?;
/// let mk = |i: usize| RssReading::new(Point::new(i as f64, 0.0), -60.0, i as f64);
/// assert!(w.push(mk(0)).is_none());
/// let round = w.push(mk(1)).expect("first round after `step` readings");
/// assert_eq!(round.len(), 2);
/// # Ok::<(), crowdwifi_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    config: WindowConfig,
    buffer: Vec<RssReading>,
    fresh: usize,
}

impl SlidingWindow {
    /// Creates a window.
    ///
    /// # Errors
    ///
    /// Propagates [`WindowConfig::validate`] failures.
    pub fn new(config: WindowConfig) -> Result<Self> {
        config.validate()?;
        Ok(SlidingWindow {
            config,
            buffer: Vec::new(),
            fresh: 0,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// Number of live (unexpired) readings currently buffered.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Pushes a reading; returns the next round's window when `step`
    /// fresh readings have accumulated. Expired readings (per the pushed
    /// reading's timestamp) are dropped first.
    pub fn push(&mut self, reading: RssReading) -> Option<Vec<RssReading>> {
        let now = reading.time;
        let ttl = self.config.ttl;
        self.buffer.retain(|r| !r.is_expired(now, ttl));
        self.buffer.push(reading);
        // Cap the buffer at the window size (older readings are no
        // longer needed by any future round).
        if self.buffer.len() > self.config.size {
            let excess = self.buffer.len() - self.config.size;
            self.buffer.drain(..excess);
        }
        self.fresh += 1;
        if self.fresh >= self.config.step {
            self.fresh = 0;
            Some(self.buffer.clone())
        } else {
            None
        }
    }

    /// Forces a final round from whatever is buffered (used when the
    /// drive ends mid-step). Returns `None` when the buffer is empty or
    /// no fresh readings arrived since the last emitted round (so a
    /// flush never duplicates the final round).
    pub fn flush(&mut self) -> Option<Vec<RssReading>> {
        if self.fresh == 0 || self.buffer.is_empty() {
            self.fresh = 0;
            return None;
        }
        self.fresh = 0;
        Some(self.buffer.clone())
    }
}

/// Batch helper: the sequence of windows a [`SlidingWindow`] would
/// produce over `readings`, including a final flush if the stream ends
/// mid-step.
///
/// # Errors
///
/// Propagates [`WindowConfig::validate`] failures.
pub fn windows_over(readings: &[RssReading], config: WindowConfig) -> Result<Vec<Vec<RssReading>>> {
    let mut w = SlidingWindow::new(config)?;
    let mut out = Vec::new();
    for r in readings {
        if let Some(round) = w.push(*r) {
            out.push(round);
        }
    }
    if let Some(round) = w.flush() {
        out.push(round);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_geo::Point;

    fn mk(i: usize) -> RssReading {
        RssReading::new(Point::new(i as f64, 0.0), -60.0, i as f64)
    }

    #[test]
    fn rounds_follow_paper_schedule() {
        // s = 6, q = 2 over 10 readings.
        let cfg = WindowConfig {
            size: 6,
            step: 2,
            ttl: f64::INFINITY,
        };
        let readings: Vec<RssReading> = (0..10).map(mk).collect();
        let rounds = windows_over(&readings, cfg).unwrap();
        assert_eq!(rounds.len(), 5);
        // Round n holds the last min(s, 2n) readings.
        assert_eq!(rounds[0].len(), 2);
        assert_eq!(rounds[2].len(), 6);
        // Window slides: round 4 covers readings 4..10.
        assert_eq!(rounds[4][0].time, 4.0);
        assert_eq!(rounds[4][5].time, 9.0);
    }

    #[test]
    fn ttl_expires_old_readings() {
        let cfg = WindowConfig {
            size: 10,
            step: 1,
            ttl: 3.0,
        };
        let mut w = SlidingWindow::new(cfg).unwrap();
        for i in 0..5 {
            w.push(mk(i));
        }
        // At t = 4, readings with time < 1 are expired (4 − t > 3).
        assert_eq!(w.len(), 4);
        let round = w.push(mk(10)).unwrap(); // t = 10 expires everything older
        assert_eq!(round.len(), 1);
        assert_eq!(round[0].time, 10.0);
    }

    #[test]
    fn flush_emits_partial_round() {
        let cfg = WindowConfig {
            size: 8,
            step: 4,
            ttl: f64::INFINITY,
        };
        let readings: Vec<RssReading> = (0..6).map(mk).collect();
        let rounds = windows_over(&readings, cfg).unwrap();
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].len(), 4);
        assert_eq!(rounds[1].len(), 6); // flush of all six
    }

    #[test]
    fn no_trailing_flush_when_stream_ends_on_step() {
        let cfg = WindowConfig {
            size: 4,
            step: 2,
            ttl: f64::INFINITY,
        };
        let readings: Vec<RssReading> = (0..4).map(mk).collect();
        let rounds = windows_over(&readings, cfg).unwrap();
        assert_eq!(rounds.len(), 2);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SlidingWindow::new(WindowConfig {
            size: 0,
            step: 1,
            ttl: 1.0
        })
        .is_err());
        assert!(SlidingWindow::new(WindowConfig {
            size: 4,
            step: 5,
            ttl: 1.0
        })
        .is_err());
        assert!(SlidingWindow::new(WindowConfig {
            size: 4,
            step: 2,
            ttl: 0.0
        })
        .is_err());
    }

    #[test]
    fn buffer_never_exceeds_window_size() {
        let cfg = WindowConfig {
            size: 3,
            step: 1,
            ttl: f64::INFINITY,
        };
        let mut w = SlidingWindow::new(cfg).unwrap();
        for i in 0..20 {
            let round = w.push(mk(i)).unwrap();
            assert!(round.len() <= 3);
        }
    }
}
