//! Pipeline instrumentation: pre-registered metric handles for the
//! online-CS hot path.
//!
//! [`PipelineInstruments`] binds every metric the pipeline records once,
//! at estimator construction, so the per-round recording path is pure
//! relaxed-atomic arithmetic — no name lookups, no locks. By default the
//! handles point at the process-wide [`crowdwifi_obs::global`] registry
//! (disabled unless `CROWDWIFI_OBS=1`); [`crate::OnlineCs::with_registry`]
//! redirects them to a local registry for scoped, deterministic
//! measurement.
//!
//! # Metric reference
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `pipeline.windows_processed` | counter | sliding-window rounds run |
//! | `pipeline.windows_empty` | counter | rounds with no usable hypothesis |
//! | `pipeline.hypotheses_evaluated` | counter | (k, assignment) hypotheses materialized |
//! | `pipeline.candidates_scored` | counter | candidate constellations scored before the BIC reduction |
//! | `pipeline.round_winner_k` | histogram | BIC-selected AP count per round |
//! | `pipeline.memo_lookups` / `pipeline.memo_hits` | counter | group-recovery memo traffic |
//! | `pipeline.group_solves` | counter | ℓ1 solves actually run |
//! | `pipeline.solver_iterations` | counter | total solver iterations |
//! | `pipeline.solver_unconverged` | counter | solves stopped at the iteration cap |
//! | `pipeline.screened_cols` | counter | columns removed by gap-safe screening |
//! | `pipeline.iterations_saved` | counter | iteration-budget headroom from early stops |
//! | `pipeline.warm_seeded` | counter | solves seeded from a previous window |
//! | `pipeline.consolidation_merges` | counter | estimates merged into an existing location |
//! | `pipeline.consolidation_new` | counter | estimates that opened a new location |
//! | `pipeline.round_seconds` | timer | wall-clock per processed round |
//!
//! Memo hits/solves are exact totals but scheduling-dependent with more
//! than one worker thread (see [`crate::recovery::SensingStats`]); pin
//! `threads: 1` when a byte-identical snapshot matters.

use crate::recovery::SensingStats;
use crate::select::RoundEstimate;
use crowdwifi_obs::{Counter, Histogram, Registry};

/// Bucket bounds for the per-round BIC-winning AP count.
const WINNER_K_BOUNDS: &[f64] = &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0];

/// Pre-registered handles for every pipeline metric (see the module
/// docs for the metric reference).
#[derive(Debug, Clone)]
pub struct PipelineInstruments {
    windows: Counter,
    windows_empty: Counter,
    hypotheses: Counter,
    candidates: Counter,
    winner_k: Histogram,
    memo_lookups: Counter,
    memo_hits: Counter,
    group_solves: Counter,
    solver_iterations: Counter,
    solver_unconverged: Counter,
    screened_cols: Counter,
    iterations_saved: Counter,
    warm_seeded: Counter,
    merges: Counter,
    new_estimates: Counter,
    round_time: Histogram,
}

impl PipelineInstruments {
    /// Binds all pipeline metrics in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        PipelineInstruments {
            windows: registry.counter("pipeline.windows_processed"),
            windows_empty: registry.counter("pipeline.windows_empty"),
            hypotheses: registry.counter("pipeline.hypotheses_evaluated"),
            candidates: registry.counter("pipeline.candidates_scored"),
            winner_k: registry.histogram("pipeline.round_winner_k", WINNER_K_BOUNDS),
            memo_lookups: registry.counter("pipeline.memo_lookups"),
            memo_hits: registry.counter("pipeline.memo_hits"),
            group_solves: registry.counter("pipeline.group_solves"),
            solver_iterations: registry.counter("pipeline.solver_iterations"),
            solver_unconverged: registry.counter("pipeline.solver_unconverged"),
            screened_cols: registry.counter("pipeline.screened_cols"),
            iterations_saved: registry.counter("pipeline.iterations_saved"),
            warm_seeded: registry.counter("pipeline.warm_seeded"),
            merges: registry.counter("pipeline.consolidation_merges"),
            new_estimates: registry.counter("pipeline.consolidation_new"),
            round_time: registry.timer("pipeline.round_seconds"),
        }
    }

    /// Binds all pipeline metrics in the process-wide
    /// [`crowdwifi_obs::global`] registry (the default for
    /// [`crate::OnlineCs`]).
    pub fn global() -> Self {
        Self::from_registry(crowdwifi_obs::global())
    }

    /// Starts the per-round span timer.
    pub(crate) fn round_span(&self) -> crowdwifi_obs::Span {
        self.round_time.start_span()
    }

    /// Records the outcome of one processed round: the winning estimate
    /// (or its absence) plus the window workspace's memo/solver stats.
    pub(crate) fn record_round(&self, winner: Option<&RoundEstimate>, stats: &SensingStats) {
        self.windows.inc();
        match winner {
            Some(est) => {
                self.hypotheses.add(est.hypotheses as u64);
                self.candidates.add(est.candidates as u64);
                self.winner_k.observe(est.k as f64);
            }
            None => self.windows_empty.inc(),
        }
        self.memo_lookups.add(stats.lookups);
        self.memo_hits.add(stats.hits);
        self.group_solves.add(stats.solves);
        self.solver_iterations.add(stats.solver_iterations);
        self.solver_unconverged.add(stats.unconverged);
        self.screened_cols.add(stats.screened_cols);
        self.iterations_saved.add(stats.iterations_saved);
        self.warm_seeded.add(stats.warm_seeded);
    }

    /// Records one consolidation step: `merged` locations folded into
    /// existing estimates out of `total` offered.
    pub(crate) fn record_consolidation(&self, merged: usize, total: usize) {
        self.merges.add(merged as u64);
        self.new_estimates.add(total.saturating_sub(merged) as u64);
    }
}

impl Default for PipelineInstruments {
    fn default() -> Self {
        Self::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_a_local_registry() {
        if !crowdwifi_obs::RECORDING {
            return;
        }
        let reg = Registry::new();
        let inst = PipelineInstruments::from_registry(&reg);
        let est = RoundEstimate {
            aps: Vec::new(),
            k: 2,
            log_likelihood: -10.0,
            bic: -25.0,
            alternates: Vec::new(),
            hypotheses: 7,
            candidates: 12,
        };
        let stats = SensingStats {
            lookups: 10,
            hits: 4,
            solves: 6,
            solver_iterations: 600,
            unconverged: 1,
            screened_cols: 42,
            iterations_saved: 120,
            warm_seeded: 3,
        };
        inst.record_round(Some(&est), &stats);
        inst.record_round(None, &SensingStats::default());
        inst.record_consolidation(1, 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["pipeline.windows_processed"], 2);
        assert_eq!(snap.counters["pipeline.windows_empty"], 1);
        assert_eq!(snap.counters["pipeline.hypotheses_evaluated"], 7);
        assert_eq!(snap.counters["pipeline.candidates_scored"], 12);
        assert_eq!(snap.counters["pipeline.memo_hits"], 4);
        assert_eq!(snap.counters["pipeline.solver_iterations"], 600);
        assert_eq!(snap.counters["pipeline.screened_cols"], 42);
        assert_eq!(snap.counters["pipeline.iterations_saved"], 120);
        assert_eq!(snap.counters["pipeline.warm_seeded"], 3);
        assert_eq!(snap.counters["pipeline.consolidation_merges"], 1);
        assert_eq!(snap.counters["pipeline.consolidation_new"], 2);
        assert_eq!(snap.histograms["pipeline.round_winner_k"].count, 1);
    }
}
