//! The assembled online CS estimator (workflow of Fig. 2).
//!
//! [`OnlineCs`] wires together the sliding window, per-round grid
//! formation, hypothesis generation, orthogonalized ℓ1 recovery,
//! centroid processing, BIC selection and credit-based consolidation.
//! Use [`OnlineCs::run`] for batch processing of a recorded drive, or
//! [`OnlineCs::session`] to feed readings one at a time as the vehicle
//! moves.

use crate::assign::ClusterAssigner;
use crate::consolidate::{ApEstimate, Consolidator};
use crate::obs::PipelineInstruments;
use crate::recovery::{CsRecovery, SensingStats, SolverAccel, WarmStartCache};
use crate::select::{estimate_round, RoundEstimate};
use crate::window::{windows_over, SlidingWindow, WindowConfig};
use crate::{CoreError, Result};
use crowdwifi_channel::{GmmModel, PathLossModel, RssReading};
use crowdwifi_geo::{Grid, Point};

/// Configuration of the online CS pipeline.
///
/// Defaults match the paper's UCI simulation: 60-reading window, step
/// 10, 8 m lattice, 100 m radio range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineCsConfig {
    /// Sliding-window parameters (§4.3.2).
    pub window: WindowConfig,
    /// Lattice edge length in meters (§4.3.1; paper default 8 m).
    pub lattice: f64,
    /// Communication radius `r_m` used for grid expansion and recovery
    /// column pruning (paper: 100 m).
    pub radio_range: f64,
    /// Maximum AP count hypothesized within one window.
    pub max_ap_per_window: usize,
    /// GMM deviation factor `b` in `σ = b·|μ|` (§4.2.1).
    pub sigma_factor: f64,
    /// Relative centroid threshold `ζ` (§4.3.4).
    pub rel_threshold: f64,
    /// Consolidation merge radius in meters (§4.3.6).
    pub merge_radius: f64,
    /// Estimates with credit ≤ this are filtered as spurious (paper: 1).
    pub min_credit: f64,
    /// Detection floor in dBm (shift origin of the recovery).
    pub detection_floor_dbm: f64,
    /// Whether to run the global BIC refinement over all consolidated
    /// candidates at the end of a batch run (see [`crate::refine`]).
    /// When disabled, only the credit filter of §4.3.6 applies.
    pub global_refine: bool,
    /// Worker threads for round and hypothesis fan-out (`0` = auto:
    /// `CROWDWIFI_THREADS` env var, else the machine's parallelism; see
    /// [`crate::par::resolve_threads`]). Results are merged in
    /// deterministic order, so any thread count produces byte-identical
    /// estimates.
    pub threads: usize,
    /// Solver-acceleration switches for the per-group ℓ1 solves
    /// (default: all on; see [`SolverAccel`] and DESIGN.md). With
    /// `warm_start` enabled the *window* loop runs serially so windows
    /// chain in drive order — hypothesis fan-out inside each window
    /// still uses `threads`.
    pub accel: SolverAccel,
}

impl Default for OnlineCsConfig {
    fn default() -> Self {
        OnlineCsConfig {
            window: WindowConfig::default(),
            lattice: 8.0,
            radio_range: 100.0,
            max_ap_per_window: 4,
            sigma_factor: 0.05,
            rel_threshold: 0.3,
            merge_radius: 12.0,
            min_credit: 1.0,
            detection_floor_dbm: -95.0,
            global_refine: true,
            threads: 0,
            accel: SolverAccel::enabled(),
        }
    }
}

impl OnlineCsConfig {
    fn validate(&self) -> Result<()> {
        self.window.validate()?;
        if !(self.lattice > 0.0) || !self.lattice.is_finite() {
            return Err(CoreError::InvalidConfig {
                field: "lattice",
                reason: format!("must be positive, got {}", self.lattice),
            });
        }
        if !(self.radio_range > 0.0) || !self.radio_range.is_finite() {
            return Err(CoreError::InvalidConfig {
                field: "radio_range",
                reason: format!("must be positive, got {}", self.radio_range),
            });
        }
        if self.max_ap_per_window == 0 {
            return Err(CoreError::InvalidConfig {
                field: "max_ap_per_window",
                reason: "must be at least 1".to_string(),
            });
        }
        if !(self.rel_threshold > 0.0 && self.rel_threshold <= 1.0) {
            return Err(CoreError::InvalidConfig {
                field: "rel_threshold",
                reason: format!("must be in (0, 1], got {}", self.rel_threshold),
            });
        }
        if !(self.merge_radius >= 0.0) || !self.merge_radius.is_finite() {
            return Err(CoreError::InvalidConfig {
                field: "merge_radius",
                reason: format!("must be non-negative, got {}", self.merge_radius),
            });
        }
        if !(self.accel.gap_rel >= 0.0) || !self.accel.gap_rel.is_finite() {
            return Err(CoreError::InvalidConfig {
                field: "accel.gap_rel",
                reason: format!(
                    "must be non-negative and finite, got {}",
                    self.accel.gap_rel
                ),
            });
        }
        Ok(())
    }
}

/// The online compressive-sensing AP estimator.
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Clone)]
pub struct OnlineCs {
    config: OnlineCsConfig,
    gmm: GmmModel,
    assigner: ClusterAssigner,
    recovery: CsRecovery,
    instruments: PipelineInstruments,
}

impl OnlineCs {
    /// Creates an estimator for the given channel model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for invalid configuration and
    /// propagates channel-model errors.
    pub fn new(config: OnlineCsConfig, pathloss: PathLossModel) -> Result<Self> {
        config.validate()?;
        let gmm = GmmModel::new(pathloss, config.sigma_factor)?;
        let assigner = ClusterAssigner::new(pathloss);
        let recovery = CsRecovery::new(pathloss, config.radio_range, config.detection_floor_dbm)
            .with_accel(config.accel);
        Ok(OnlineCs {
            config,
            gmm,
            assigner,
            recovery,
            instruments: PipelineInstruments::global(),
        })
    }

    /// Overrides the window-factorization strategy of the inner
    /// recovery engine (see
    /// [`CsRecovery::with_fused_factorization`]); `true` (the default)
    /// folds orthogonalization and pseudo-inversion into one SVD. An
    /// A/B hook for the throughput bench's `kernel_accel` section —
    /// both settings recover the same support.
    pub fn with_fused_factorization(mut self, fused: bool) -> Self {
        self.recovery = self.recovery.with_fused_factorization(fused);
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &OnlineCsConfig {
        &self.config
    }

    /// Replaces the recovery engine (ablation hook: e.g.
    /// [`CsRecovery::without_orthogonalization`]).
    pub fn with_recovery(mut self, recovery: CsRecovery) -> Self {
        self.recovery = recovery;
        self
    }

    /// Redirects this estimator's metrics into `registry` instead of the
    /// process-wide [`crowdwifi_obs::global`] registry — e.g. a local
    /// [`crowdwifi_obs::Registry`] whose snapshot covers exactly one run.
    pub fn with_registry(mut self, registry: &crowdwifi_obs::Registry) -> Self {
        self.instruments = PipelineInstruments::from_registry(registry);
        self
    }

    /// Processes one window round: grid formation + hypothesis search.
    ///
    /// # Errors
    ///
    /// Propagates recovery failures; an un-formable grid (empty round)
    /// yields `Ok(None)`.
    pub fn process_round(&self, round: &[RssReading]) -> Result<Option<RoundEstimate>> {
        Ok(self.process_round_stats(round, None)?.0)
    }

    /// [`OnlineCs::process_round`] plus the window's [`SensingStats`].
    /// When `warm` is given, the solves are seeded from it and it is
    /// refilled with this window's solutions afterwards (the cross-window
    /// warm-start chain).
    fn process_round_stats(
        &self,
        round: &[RssReading],
        warm: Option<&mut WarmStartCache>,
    ) -> Result<(Option<RoundEstimate>, SensingStats)> {
        if round.is_empty() {
            return Ok((None, SensingStats::default()));
        }
        let positions: Vec<Point> = round.iter().map(|r| r.position).collect();
        let grid =
            Grid::from_reference_points(&positions, self.config.radio_range, self.config.lattice)?;
        let sensing = match warm.as_deref() {
            Some(w) => self.recovery.prepare_window_seeded(&grid, round, w),
            None => self.recovery.prepare_window(&grid, round),
        };
        let span = self.instruments.round_span();
        let est = estimate_round(
            round,
            &grid,
            &self.gmm,
            &self.assigner,
            &self.recovery,
            &sensing,
            self.config.max_ap_per_window,
            self.config.rel_threshold,
            self.config.threads,
        )?;
        span.finish();
        let stats = sensing.stats();
        self.instruments.record_round(est.as_ref(), &stats);
        if let Some(w) = warm {
            w.absorb(&grid, &sensing);
        }
        Ok((est, stats))
    }

    /// Batch entry point: runs the full pipeline over a recorded drive
    /// and returns the consolidated, spurious-filtered AP estimates.
    ///
    /// # Errors
    ///
    /// Propagates round-processing failures.
    pub fn run(&self, readings: &[RssReading]) -> Result<Vec<ApEstimate>> {
        Ok(self.run_detailed(readings)?.final_aps)
    }

    /// Batch entry point that also returns per-round diagnostics.
    ///
    /// # Errors
    ///
    /// Propagates round-processing failures.
    pub fn run_detailed(&self, readings: &[RssReading]) -> Result<PipelineReport> {
        let mut consolidator = Consolidator::new(self.config.merge_radius);
        // Rounds are independent until consolidation: process them in
        // parallel, then merge strictly in window order so the
        // consolidator sees the exact sequence a serial run produces
        // (credit accumulation is order-sensitive). Nested parallelism
        // is safe: the per-round hypothesis fan-out draws from the same
        // global thread budget and runs inline once it is exhausted.
        let windows: Vec<Vec<RssReading>> = windows_over(readings, self.config.window)?;
        let processed = if self.config.accel.warm_start {
            // Warm starts chain window w's solutions into window w+1's
            // initial iterates, which only makes sense in drive order:
            // run the window loop serially (the per-window hypothesis
            // fan-out inside `estimate_round` still parallelizes).
            let mut warm = WarmStartCache::new();
            let mut out = Vec::with_capacity(windows.len());
            for round in &windows {
                out.push(self.process_round_stats(round, Some(&mut warm))?);
            }
            out
        } else {
            crate::par::try_par_map(&windows, self.config.threads, |_, round| {
                self.process_round_stats(round, None)
            })?
        };
        let mut rounds = Vec::new();
        let mut sensing = SensingStats::default();
        for (est, stats) in processed {
            sensing.merge(&stats);
            if let Some(est) = est {
                self.consolidate_estimate(&mut consolidator, &est);
                rounds.push(est);
            }
        }
        let final_aps = if self.config.global_refine {
            // Global refinement sees *all* candidates, including
            // single-credit ones a weak AP may only have earned once.
            let selected =
                crate::refine::global_bic_selection(readings, consolidator.estimates(), &self.gmm);
            crate::refine::polish_positions(
                readings,
                &selected,
                &self.recovery,
                self.config.lattice,
                2,
            )
        } else {
            consolidator.filtered(self.config.min_credit)
        };
        Ok(PipelineReport {
            final_aps,
            all_estimates: consolidator.estimates().to_vec(),
            rounds,
            sensing,
        })
    }

    /// Folds one round's winner (plus reduced-credit alternates) into
    /// the consolidator, recording the merge/new split.
    fn consolidate_estimate(&self, consolidator: &mut Consolidator, est: &RoundEstimate) {
        let mut merged = consolidator.merge_round(&est.aps);
        for &alt in &est.alternates {
            if consolidator.merge_one(alt, 0.25) {
                merged += 1;
            }
        }
        self.instruments
            .record_consolidation(merged, est.aps.len() + est.alternates.len());
    }

    /// Starts a streaming session.
    ///
    /// # Errors
    ///
    /// Propagates window-configuration failures.
    pub fn session(&self) -> Result<OnlineCsSession<'_>> {
        Ok(OnlineCsSession {
            pipeline: self,
            window: SlidingWindow::new(self.config.window)?,
            consolidator: Consolidator::new(self.config.merge_radius),
            history: Vec::new(),
            warm: WarmStartCache::new(),
        })
    }
}

/// The full-strength batch estimator: candidate generation from both a
/// whole-batch CS round and sliding-window rounds, global BIC selection
/// over the pooled candidates, and whole-drive position polish.
///
/// This is the recipe the Fig. 8/Fig. 10 benches use. The plain
/// [`OnlineCs::run`] is the *online* estimator a vehicle runs while
/// driving; `ensemble_run` is what the crowd-server (or an offline
/// analysis) can afford once the whole drive is recorded. `k_hint`
/// bounds how many APs the batch round may hypothesize (use a generous
/// upper bound; the BIC still selects the count).
///
/// # Errors
///
/// Propagates pipeline failures from either internal estimator.
pub fn ensemble_run(
    readings: &[RssReading],
    base: OnlineCsConfig,
    pathloss: PathLossModel,
    k_hint: usize,
) -> Result<Vec<ApEstimate>> {
    if readings.is_empty() {
        return Ok(Vec::new());
    }
    let m = readings.len().max(4);
    let batch_config = OnlineCsConfig {
        window: WindowConfig {
            size: m,
            step: m,
            ttl: f64::INFINITY,
        },
        max_ap_per_window: k_hint.max(1) + 5,
        global_refine: false, // selection happens over the pooled set
        ..base
    };
    let windowed_config = OnlineCsConfig {
        window: WindowConfig {
            size: 40.min(m),
            step: 20.min(m),
            ttl: base.window.ttl,
        },
        max_ap_per_window: base.max_ap_per_window.max(6),
        global_refine: false,
        ..base
    };
    let batch = OnlineCs::new(batch_config, pathloss)?;
    let windowed = OnlineCs::new(windowed_config, pathloss)?;
    let mut candidates = batch.run_detailed(readings)?.all_estimates;
    candidates.extend(windowed.run_detailed(readings)?.all_estimates);

    let gmm = GmmModel::new(pathloss, base.sigma_factor)?;
    let selected = crate::refine::global_bic_selection(readings, &candidates, &gmm);
    let recovery = CsRecovery::new(pathloss, base.radio_range, base.detection_floor_dbm);
    Ok(crate::refine::polish_positions(
        readings,
        &selected,
        &recovery,
        base.lattice,
        4,
    ))
}

/// Output of [`OnlineCs::run_detailed`].
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Consolidated estimates that survived the spurious filter.
    pub final_aps: Vec<ApEstimate>,
    /// All consolidated estimates, including single-credit ones.
    pub all_estimates: Vec<ApEstimate>,
    /// The BIC-winning hypothesis of every round, in order.
    pub rounds: Vec<RoundEstimate>,
    /// Drive-total memo/solver statistics summed over every window —
    /// the accounting behind the `solver_accel` bench section
    /// (iterations, screened columns, warm-seeded solves).
    pub sensing: SensingStats,
}

/// A streaming pipeline session; see [`OnlineCs::session`].
#[derive(Debug)]
pub struct OnlineCsSession<'a> {
    pipeline: &'a OnlineCs,
    window: SlidingWindow,
    consolidator: Consolidator,
    history: Vec<RssReading>,
    /// Cross-window warm-start chain (mirrors the batch path exactly:
    /// the session's round sequence is the same as `windows_over`'s).
    warm: WarmStartCache,
}

impl OnlineCsSession<'_> {
    /// Runs one completed round through the pipeline, threading the
    /// warm-start chain when enabled.
    fn process(&mut self, round: &[RssReading]) -> Result<()> {
        let warm = self
            .pipeline
            .config
            .accel
            .warm_start
            .then_some(&mut self.warm);
        if let Some(est) = self.pipeline.process_round_stats(round, warm)?.0 {
            self.pipeline
                .consolidate_estimate(&mut self.consolidator, &est);
        }
        Ok(())
    }

    /// Feeds one reading. When a round completes, processes it and
    /// returns the **current** filtered AP estimates.
    ///
    /// # Errors
    ///
    /// Propagates round-processing failures.
    pub fn push(&mut self, reading: RssReading) -> Result<Option<Vec<ApEstimate>>> {
        self.history.push(reading);
        match self.window.push(reading) {
            None => Ok(None),
            Some(round) => {
                self.process(&round)?;
                Ok(Some(
                    self.consolidator.filtered(self.pipeline.config.min_credit),
                ))
            }
        }
    }

    /// Ends the session: processes any partial round and returns the
    /// final filtered estimates.
    ///
    /// # Errors
    ///
    /// Propagates round-processing failures.
    pub fn finish(mut self) -> Result<Vec<ApEstimate>> {
        if let Some(round) = self.window.flush() {
            self.process(&round)?;
        }
        if self.pipeline.config.global_refine {
            let selected = crate::refine::global_bic_selection(
                &self.history,
                self.consolidator.estimates(),
                &self.pipeline.gmm,
            );
            return Ok(crate::refine::polish_positions(
                &self.history,
                &selected,
                &self.pipeline.recovery,
                self.pipeline.config.lattice,
                2,
            ));
        }
        Ok(self.consolidator.filtered(self.pipeline.config.min_credit))
    }

    /// Current unfiltered estimates.
    pub fn estimates(&self) -> &[ApEstimate] {
        self.consolidator.estimates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PathLossModel {
        PathLossModel::uci_campus()
    }

    /// Fading-free readings along a staggered drive past `aps`, each
    /// instant hearing its nearest AP. The lane changes every few
    /// samples keep the route non-colinear (a single straight line would
    /// leave the recovery's mirror ambiguity unresolved).
    fn drive_past(aps: &[Point], n: usize, spacing: f64) -> Vec<RssReading> {
        let m = model();
        (0..n)
            .map(|i| {
                let p = Point::new(
                    spacing * i as f64,
                    if (i / 5) % 2 == 0 { 0.0 } else { 14.0 },
                );
                let nearest = aps
                    .iter()
                    .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                    .unwrap();
                RssReading::new(p, m.mean_rss(p.distance(*nearest)), i as f64)
            })
            .collect()
    }

    fn small_config() -> OnlineCsConfig {
        OnlineCsConfig {
            window: WindowConfig {
                size: 20,
                step: 10,
                ttl: f64::INFINITY,
            },
            max_ap_per_window: 3,
            ..OnlineCsConfig::default()
        }
    }

    /// The tentpole determinism contract: any `threads` setting yields
    /// byte-identical output, because rounds and hypotheses are merged
    /// in input order regardless of completion order. On a single-core
    /// machine the parallel run degrades to inline execution, which
    /// must (and does) take the same code path through the reduction.
    #[test]
    fn parallel_and_serial_runs_are_identical() {
        use rand::{Rng, SeedableRng};
        // Seeded UCI-style scenario: two roadside APs, staggered lane,
        // deterministic noise on every reading.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xC0FFEE);
        let m = model();
        let aps = [Point::new(40.0, 22.0), Point::new(160.0, 18.0)];
        let readings: Vec<RssReading> = (0..80)
            .map(|i| {
                let p = Point::new(3.0 * i as f64, if (i / 5) % 2 == 0 { 0.0 } else { 14.0 });
                let nearest = aps
                    .iter()
                    .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                    .unwrap();
                let noise: f64 = rng.random_range(-2.0..2.0);
                RssReading::new(p, m.mean_rss(p.distance(*nearest)) + noise, i as f64)
            })
            .collect();

        let serial = OnlineCs::new(
            OnlineCsConfig {
                threads: 1,
                ..small_config()
            },
            model(),
        )
        .unwrap();
        let parallel = OnlineCs::new(
            OnlineCsConfig {
                threads: 8,
                ..small_config()
            },
            model(),
        )
        .unwrap();
        let a = serial.run_detailed(&readings).unwrap();
        let b = parallel.run_detailed(&readings).unwrap();
        assert!(!a.rounds.is_empty(), "scenario produced no rounds");
        assert_eq!(a.final_aps, b.final_aps);
        assert_eq!(a.all_estimates, b.all_estimates);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn single_ap_end_to_end() {
        let ap = Point::new(60.0, 24.0);
        let readings = drive_past(&[ap], 40, 3.0);
        let pipeline = OnlineCs::new(small_config(), model()).unwrap();
        let aps = pipeline.run(&readings).unwrap();
        assert_eq!(aps.len(), 1, "got {aps:?}");
        assert!(aps[0].position.distance(ap) < 12.0);
        assert!(aps[0].credit > 1.0);
    }

    #[test]
    fn two_aps_end_to_end() {
        let ap1 = Point::new(30.0, 20.0);
        let ap2 = Point::new(150.0, 20.0);
        let readings = drive_past(&[ap1, ap2], 60, 3.0);
        let pipeline = OnlineCs::new(small_config(), model()).unwrap();
        let aps = pipeline.run(&readings).unwrap();
        assert_eq!(aps.len(), 2, "got {aps:?}");
        for truth in [ap1, ap2] {
            let d = aps
                .iter()
                .map(|e| e.position.distance(truth))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 14.0, "AP at {truth} unmatched ({d:.1} m)");
        }
    }

    #[test]
    fn streaming_session_matches_batch() {
        let ap = Point::new(45.0, 16.0);
        let readings = drive_past(&[ap], 40, 3.0);
        let pipeline = OnlineCs::new(small_config(), model()).unwrap();
        let batch = pipeline.run(&readings).unwrap();

        let mut session = pipeline.session().unwrap();
        for r in &readings {
            session.push(*r).unwrap();
        }
        let streamed = session.finish().unwrap();
        assert_eq!(batch.len(), streamed.len());
        assert!(batch[0].position.distance(streamed[0].position) < 1e-9);
    }

    #[test]
    fn accelerated_run_matches_baseline_and_saves_iterations() {
        let ap = Point::new(60.0, 24.0);
        let readings = drive_past(&[ap], 40, 3.0);
        let baseline_cfg = OnlineCsConfig {
            accel: SolverAccel::disabled(),
            ..small_config()
        };
        let accel_cfg = OnlineCsConfig {
            accel: SolverAccel::enabled(),
            ..small_config()
        };
        let base = OnlineCs::new(baseline_cfg, model())
            .unwrap()
            .run_detailed(&readings)
            .unwrap();
        let fast = OnlineCs::new(accel_cfg, model())
            .unwrap()
            .run_detailed(&readings)
            .unwrap();
        // Same estimate, found with a smaller iteration bill.
        assert_eq!(base.final_aps.len(), fast.final_aps.len());
        for (b, f) in base.final_aps.iter().zip(&fast.final_aps) {
            assert!(
                b.position.distance(f.position) < 1.0,
                "accelerated AP drifted {:.3} m",
                b.position.distance(f.position)
            );
        }
        assert!(base.sensing.solver_iterations > 0);
        assert!(
            fast.sensing.solver_iterations < base.sensing.solver_iterations,
            "accel {} >= baseline {}",
            fast.sensing.solver_iterations,
            base.sensing.solver_iterations
        );
        assert!(fast.sensing.warm_seeded > 0, "no solve was warm-seeded");
        assert_eq!(base.sensing.warm_seeded, 0);
        assert_eq!(base.sensing.screened_cols, 0);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let pipeline = OnlineCs::new(small_config(), model()).unwrap();
        assert!(pipeline.run(&[]).unwrap().is_empty());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad_lattice = OnlineCsConfig {
            lattice: 0.0,
            ..OnlineCsConfig::default()
        };
        assert!(OnlineCs::new(bad_lattice, model()).is_err());
        let bad_thresh = OnlineCsConfig {
            rel_threshold: 1.5,
            ..OnlineCsConfig::default()
        };
        assert!(OnlineCs::new(bad_thresh, model()).is_err());
        let bad_max = OnlineCsConfig {
            max_ap_per_window: 0,
            ..OnlineCsConfig::default()
        };
        assert!(OnlineCs::new(bad_max, model()).is_err());
    }

    #[test]
    fn report_contains_round_history() {
        let ap = Point::new(50.0, 20.0);
        let readings = drive_past(&[ap], 40, 3.0);
        let pipeline = OnlineCs::new(small_config(), model()).unwrap();
        let report = pipeline.run_detailed(&readings).unwrap();
        assert!(!report.rounds.is_empty());
        assert!(report.all_estimates.len() >= report.final_aps.len());
        for round in &report.rounds {
            assert!(round.k >= 1);
            assert!(round.bic.is_finite());
        }
    }
}
