//! Credit-based consolidation across rounds (§4.3.6).
//!
//! Each round's BIC-winning constellation grants one credit to every
//! estimated location. Estimates that align with a previous estimate
//! (within a merge radius) are merged — position averaged proportional
//! to credit, credits summed. When collection ends, estimates with at
//! most `min_credit` credits are filtered out as spurious.

use crowdwifi_geo::Point;
use serde::{Deserialize, Serialize};

/// A consolidated AP location estimate with its accumulated credit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApEstimate {
    /// Credit-weighted position.
    pub position: Point,
    /// Accumulated credit (one per round that voted for this location).
    pub credit: f64,
}

/// The consolidation data set.
///
/// # Example
///
/// ```
/// use crowdwifi_core::consolidate::Consolidator;
/// use crowdwifi_geo::Point;
///
/// let mut c = Consolidator::new(10.0);
/// c.merge_round(&[Point::new(0.0, 0.0)]);
/// c.merge_round(&[Point::new(4.0, 0.0)]); // aligns with the first
/// c.merge_round(&[Point::new(500.0, 0.0)]); // new location
/// let all = c.estimates();
/// assert_eq!(all.len(), 2);
/// // Only the twice-voted location survives the spurious filter.
/// assert_eq!(c.filtered(1.0).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Consolidator {
    merge_radius: f64,
    estimates: Vec<ApEstimate>,
}

impl Consolidator {
    /// Creates a consolidator that merges estimates within
    /// `merge_radius` meters.
    ///
    /// # Panics
    ///
    /// Panics if the radius is negative or non-finite.
    pub fn new(merge_radius: f64) -> Self {
        assert!(
            merge_radius >= 0.0 && merge_radius.is_finite(),
            "merge_radius must be non-negative and finite"
        );
        Consolidator {
            merge_radius,
            estimates: Vec::new(),
        }
    }

    /// The merge radius in meters.
    pub fn merge_radius(&self) -> f64 {
        self.merge_radius
    }

    /// Ingests one round's estimated locations, granting one credit each
    /// and merging with aligned prior estimates. Returns how many of the
    /// locations merged into an existing estimate (the rest opened new
    /// ones or were rejected).
    pub fn merge_round(&mut self, locations: &[Point]) -> usize {
        locations
            .iter()
            .filter(|&&loc| self.merge_one(loc, 1.0))
            .count()
    }

    /// Ingests a single location with an explicit credit grant (used by
    /// the offline crowdsourcing fusion, where a crowd-vehicle's vote is
    /// weighted by its reliability). Returns `true` when the location
    /// merged into an existing estimate, `false` when it opened a new
    /// one or was rejected (non-positive credit / non-finite position).
    pub fn merge_one(&mut self, location: Point, credit: f64) -> bool {
        if credit <= 0.0 || !location.is_finite() {
            return false;
        }
        // Nearest existing estimate within the merge radius.
        let nearest = self
            .estimates
            .iter_mut()
            .filter(|e| e.position.distance(location) <= self.merge_radius)
            .min_by(|a, b| {
                a.position
                    .distance(location)
                    .partial_cmp(&b.position.distance(location))
                    .expect("finite distances")
            });
        match nearest {
            Some(existing) => {
                let total = existing.credit + credit;
                existing.position = Point::new(
                    (existing.position.x * existing.credit + location.x * credit) / total,
                    (existing.position.y * existing.credit + location.y * credit) / total,
                );
                existing.credit = total;
                true
            }
            None => {
                self.estimates.push(ApEstimate {
                    position: location,
                    credit,
                });
                false
            }
        }
    }

    /// All current estimates (unfiltered), in insertion order.
    pub fn estimates(&self) -> &[ApEstimate] {
        &self.estimates
    }

    /// The final AP set: estimates with credit strictly above
    /// `min_credit` (the paper's reality-checked default is 1 — a
    /// location seen only once is removed).
    pub fn filtered(&self, min_credit: f64) -> Vec<ApEstimate> {
        self.estimates
            .iter()
            .filter(|e| e.credit > min_credit)
            .copied()
            .collect()
    }

    /// Clears all accumulated estimates.
    pub fn clear(&mut self) {
        self.estimates.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_estimates_merge_with_credit_weighting() {
        let mut c = Consolidator::new(10.0);
        c.merge_round(&[Point::new(0.0, 0.0)]);
        c.merge_round(&[Point::new(0.0, 0.0)]);
        // Third vote at (6, 0): merged position = (2·0 + 1·6)/3 = 2.
        c.merge_round(&[Point::new(6.0, 0.0)]);
        let e = c.estimates();
        assert_eq!(e.len(), 1);
        assert!((e[0].position.x - 2.0).abs() < 1e-12);
        assert_eq!(e[0].credit, 3.0);
    }

    #[test]
    fn distant_estimates_stay_separate() {
        let mut c = Consolidator::new(10.0);
        c.merge_round(&[Point::new(0.0, 0.0), Point::new(100.0, 0.0)]);
        assert_eq!(c.estimates().len(), 2);
    }

    #[test]
    fn spurious_filter_drops_single_credit() {
        let mut c = Consolidator::new(10.0);
        c.merge_round(&[Point::new(0.0, 0.0), Point::new(100.0, 0.0)]);
        c.merge_round(&[Point::new(1.0, 0.0)]);
        let kept = c.filtered(1.0);
        assert_eq!(kept.len(), 1);
        assert!(kept[0].position.x < 2.0);
    }

    #[test]
    fn weighted_merge_one_respects_credit() {
        let mut c = Consolidator::new(20.0);
        c.merge_one(Point::new(0.0, 0.0), 9.0);
        c.merge_one(Point::new(10.0, 0.0), 1.0);
        let e = c.estimates();
        assert_eq!(e.len(), 1);
        assert!((e[0].position.x - 1.0).abs() < 1e-12);
        assert_eq!(e[0].credit, 10.0);
    }

    #[test]
    fn non_positive_credit_and_nan_ignored() {
        let mut c = Consolidator::new(5.0);
        assert!(!c.merge_one(Point::new(0.0, 0.0), 0.0));
        assert!(!c.merge_one(Point::new(f64::NAN, 0.0), 1.0));
        assert!(c.estimates().is_empty());
    }

    #[test]
    fn merge_results_distinguish_new_from_merged() {
        let mut c = Consolidator::new(10.0);
        assert!(!c.merge_one(Point::new(0.0, 0.0), 1.0));
        assert!(c.merge_one(Point::new(3.0, 0.0), 1.0));
        // One aligned vote, one new location.
        assert_eq!(
            c.merge_round(&[Point::new(1.0, 0.0), Point::new(80.0, 0.0)]),
            1
        );
    }

    #[test]
    fn clear_resets() {
        let mut c = Consolidator::new(5.0);
        c.merge_round(&[Point::new(0.0, 0.0)]);
        c.clear();
        assert!(c.estimates().is_empty());
    }

    #[test]
    fn merges_to_nearest_not_first() {
        let mut c = Consolidator::new(10.0);
        c.merge_round(&[Point::new(0.0, 0.0), Point::new(15.0, 0.0)]);
        // (9, 0) is within radius of both; must merge into (15, 0).
        c.merge_one(Point::new(9.0, 0.0), 1.0);
        let e = c.estimates();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].credit, 1.0);
        assert_eq!(e[1].credit, 2.0);
        assert!((e[1].position.x - 12.0).abs() < 1e-12);
    }
}
