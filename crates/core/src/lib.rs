//! CrowdWiFi online compressive sensing — the paper's core contribution.
//!
//! A crowd-vehicle drives past unknown roadside APs, collecting one noisy
//! RSS reading at a time. This crate turns that stream into AP count and
//! location estimates, following §4 of the paper:
//!
//! 1. [`window`] — sliding-window RSS reading with TTL expiry (§4.3.2),
//! 2. grid formation over the current driving area (§4.3.1, via
//!    [`crowdwifi_geo::Grid::from_reference_points`]),
//! 3. [`assign`] — hypothesize the AP count `K` and which reading came
//!    from which AP (§4.3.3, Proposition 2),
//! 4. [`recovery`] — per-hypothesis ℓ1 sparse recovery on the grid with
//!    the Proposition 1 orthogonalization (§4.2.2),
//! 5. [`centroid`] — centroid processing of the dominant coefficients
//!    (§4.3.4, Eq. 3),
//! 6. [`select`] — Gaussian-mixture likelihood + BIC model selection
//!    across hypotheses (§4.3.5),
//! 7. [`consolidate`] — credit-based consolidation across rounds and
//!    spurious-estimate filtering (§4.3.6),
//!
//! all orchestrated by [`pipeline::OnlineCs`]. [`metrics`] implements the
//! paper's counting- and localization-error definitions (§6).
//!
//! # Example
//!
//! ```
//! use crowdwifi_core::pipeline::{OnlineCs, OnlineCsConfig};
//! use crowdwifi_channel::{PathLossModel, RssReading};
//! use crowdwifi_geo::Point;
//!
//! // Synthetic fading-free drive past one AP at (40, 20). The lane
//! // staggers so the route is not one straight line (a colinear route
//! // cannot tell which side of the road the AP is on).
//! let model = PathLossModel::uci_campus();
//! let ap = Point::new(40.0, 20.0);
//! let readings: Vec<RssReading> = (0..30)
//!     .map(|i| {
//!         let p = Point::new(2.0 * i as f64, if (i / 5) % 2 == 0 { 0.0 } else { 6.0 });
//!         RssReading::new(p, model.mean_rss(p.distance(ap)), i as f64)
//!     })
//!     .collect();
//!
//! let estimator = OnlineCs::new(OnlineCsConfig {
//!     lattice: 8.0,
//!     ..OnlineCsConfig::default()
//! }, model)?;
//! let aps = estimator.run(&readings)?;
//! assert_eq!(aps.len(), 1);
//! assert!(aps[0].position.distance(ap) < 12.0);
//! # Ok::<(), crowdwifi_core::CoreError>(())
//! ```

#![deny(missing_docs)]
// `!(x > 0.0)` style guards are used deliberately throughout: unlike
// `x <= 0.0`, they also reject NaN, which is exactly what parameter
// validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod assign;
pub mod centroid;
pub mod consolidate;
pub mod metrics;
pub mod obs;
pub mod par;
pub mod pipeline;
pub mod recovery;
pub mod refine;
pub mod select;
pub mod window;

pub use consolidate::ApEstimate;
pub use pipeline::{OnlineCs, OnlineCsConfig};
pub use recovery::{SensingStats, SolverAccel, WarmStartCache};

/// Errors produced by the online CS pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration value is out of range.
    InvalidConfig {
        /// Field name.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// The sparse solver failed.
    Solver(String),
    /// Geometry construction failed.
    Geometry(String),
    /// Channel-model construction failed.
    Channel(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig { field, reason } => {
                write!(f, "invalid config `{field}`: {reason}")
            }
            CoreError::Solver(e) => write!(f, "sparse solver failure: {e}"),
            CoreError::Geometry(e) => write!(f, "geometry failure: {e}"),
            CoreError::Channel(e) => write!(f, "channel failure: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<crowdwifi_sparsesolve::SolverError> for CoreError {
    fn from(e: crowdwifi_sparsesolve::SolverError) -> Self {
        CoreError::Solver(e.to_string())
    }
}

impl From<crowdwifi_geo::GeoError> for CoreError {
    fn from(e: crowdwifi_geo::GeoError) -> Self {
        CoreError::Geometry(e.to_string())
    }
}

impl From<crowdwifi_channel::ChannelError> for CoreError {
    fn from(e: crowdwifi_channel::ChannelError) -> Self {
        CoreError::Channel(e.to_string())
    }
}

/// Convenience alias for pipeline results.
pub type Result<T> = std::result::Result<T, CoreError>;
