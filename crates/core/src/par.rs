//! Deterministic fork–join parallelism for the pipeline.
//!
//! [`par_map`] fans a slice out over scoped worker threads and returns
//! the results **in input order**, so any sequential reduction over its
//! output is byte-identical to running the map serially. Workers pull
//! items from a shared atomic cursor (good load balance when item costs
//! vary wildly, as hypothesis fan-outs do), and a panicking worker
//! propagates its panic to the caller once every sibling has been
//! joined — no work is silently lost.
//!
//! Thread counts resolve as: explicit request (e.g.
//! [`crate::OnlineCsConfig::threads`]) > `CROWDWIFI_THREADS` env var
//! (clamped to the detected parallelism) >
//! [`std::thread::available_parallelism`]. A process-wide budget caps
//! the *total* number of extra workers alive at once, so nested
//! parallel regions (windows in [`crate::OnlineCs::run_detailed`] ×
//! hypotheses in [`crate::select::estimate_round`]) degrade to inline
//! execution instead of multiplying thread counts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable overriding the auto-detected thread count.
pub const THREADS_ENV: &str = "CROWDWIFI_THREADS";

/// Resolves an effective thread count: `requested` when non-zero, else
/// the `CROWDWIFI_THREADS` environment variable when set to a positive
/// integer, else [`std::thread::available_parallelism`].
///
/// An *explicit* `requested` is honored verbatim — a caller that asks
/// for 3 threads gets 3. The env var, by contrast, is a deployment
/// default that often travels with the config to machines of unknown
/// size, so it is clamped to the detected parallelism: oversubscribing
/// a 1-core box with an 8-thread budget measurably regresses the
/// pipeline (0.949x on the campus-drive bench) without buying any
/// concurrency.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    let detected = std::thread::available_parallelism().map_or(1, |n| n.get());
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return clamp_env_threads(n, detected);
            }
        }
    }
    detected
}

/// Clamps an env-sourced thread request to the detected parallelism
/// (never below 1).
fn clamp_env_threads(requested: usize, detected: usize) -> usize {
    requested.min(detected.max(1))
}

/// Process-wide budget of *extra* (non-caller) worker threads.
///
/// Initialized on first use from [`resolve_threads`]`(0) - 1` and never
/// re-read, so one process observes one consistent budget regardless of
/// later env changes.
fn extra_budget() -> &'static AtomicUsize {
    static BUDGET: OnceLock<AtomicUsize> = OnceLock::new();
    BUDGET.get_or_init(|| AtomicUsize::new(resolve_threads(0).saturating_sub(1)))
}

/// Leases up to `want` extra workers from the global budget; returns
/// the number actually granted (0 when the budget is exhausted, i.e.
/// run inline).
fn lease_extra(want: usize) -> usize {
    let budget = extra_budget();
    let mut current = budget.load(Ordering::Relaxed);
    loop {
        let granted = want.min(current);
        if granted == 0 {
            return 0;
        }
        match budget.compare_exchange_weak(
            current,
            current - granted,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => return granted,
            Err(actual) => current = actual,
        }
    }
}

/// RAII handle returning leased workers to the budget — also on unwind,
/// so a panicking map does not permanently shrink the process's
/// parallelism.
struct Lease(usize);

impl Drop for Lease {
    fn drop(&mut self) {
        if self.0 > 0 {
            extra_budget().fetch_add(self.0, Ordering::AcqRel);
        }
    }
}

/// Maps `f` over `items` using up to `threads` OS threads (the caller's
/// thread plus leased extras), returning results in input order.
///
/// `threads == 0` means auto ([`resolve_threads`]). The function
/// receives `(index, &item)`. Output order — and therefore any
/// order-dependent reduction downstream — is identical to the
/// sequential `items.iter().enumerate().map(...)`.
///
/// # Panics
///
/// Re-raises the first worker panic after all workers have been joined.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = resolve_threads(threads);
    if items.len() <= 1 || threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let extra = lease_extra(threads.min(items.len()).saturating_sub(1));
    if extra == 0 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let _lease = Lease(extra);

    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(items.len()));
    let worker = || {
        let mut local = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(item) = items.get(i) else { break };
            local.push((i, f(i, item)));
        }
        collected
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend(local);
    };

    // `scope` joins every spawned worker before returning and re-raises
    // the first worker panic afterwards, so no result is silently lost.
    std::thread::scope(|scope| {
        for _ in 0..extra {
            scope.spawn(worker);
        }
        // The caller participates too: `threads` includes this thread.
        worker();
    });

    let mut collected = collected
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    collected.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(collected.len(), items.len());
    collected.into_iter().map(|(_, u)| u).collect()
}

/// [`par_map`] for fallible maps: stops delivering new items to workers
/// once an error has been observed and returns the error occurring at
/// the **lowest input index** — exactly the error a sequential
/// `try_map` loop would have hit first (later items may have been
/// computed speculatively; their results are discarded).
pub fn try_par_map<T, U, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    let failed = std::sync::atomic::AtomicBool::new(false);
    let results = par_map(items, threads, |i, t| {
        if failed.load(Ordering::Relaxed) {
            return None; // fast-path drain once an error is known
        }
        let r = f(i, t);
        if r.is_err() {
            failed.store(true, Ordering::Relaxed);
        }
        Some(r)
    });
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Some(Ok(u)) => out.push(u),
            Some(Err(e)) => return Err(e),
            // Items are pulled from a monotonic cursor, so a drained
            // slot can only sit at a *higher* index than the error that
            // triggered the drain — the in-order scan always returns
            // that error first.
            None => unreachable!("drained slot with no preceding error"),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let items: Vec<u64> = (0..257).collect();
        let seq = par_map(&items, 1, |_, &x| x.wrapping_mul(0x9e3779b97f4a7c15));
        let par = par_map(&items, 8, |_, &x| x.wrapping_mul(0x9e3779b97f4a7c15));
        assert_eq!(seq, par);
    }

    #[test]
    fn nested_par_maps_complete() {
        let outer: Vec<usize> = (0..8).collect();
        let out = par_map(&outer, 4, |_, &o| {
            let inner: Vec<usize> = (0..16).collect();
            par_map(&inner, 4, |_, &i| o * 100 + i)
                .iter()
                .sum::<usize>()
        });
        let expect: Vec<usize> = (0..8)
            .map(|o| (0..16).map(|i| o * 100 + i).sum::<usize>())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn try_par_map_returns_first_error() {
        let items: Vec<usize> = (0..100).collect();
        let r = try_par_map(
            &items,
            4,
            |_, &x| {
                if x == 17 || x == 63 {
                    Err(x)
                } else {
                    Ok(x)
                }
            },
        );
        assert_eq!(r, Err(17));
    }

    #[test]
    fn try_par_map_ok_path() {
        let items: Vec<i32> = (0..50).collect();
        let r: Result<Vec<i32>, ()> = try_par_map(&items, 3, |_, &x| Ok(x + 1));
        assert_eq!(r.unwrap(), (1..51).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(&items, 4, |_, &x| {
                if x == 33 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn resolve_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn env_request_is_clamped_to_detected_parallelism() {
        assert_eq!(clamp_env_threads(8, 1), 1);
        assert_eq!(clamp_env_threads(8, 4), 4);
        assert_eq!(clamp_env_threads(2, 16), 2);
        // Degenerate detection never zeroes the budget.
        assert_eq!(clamp_env_threads(5, 0), 1);
    }

    #[test]
    fn resolved_auto_count_never_exceeds_detection_under_env() {
        // `resolve_threads(0)` may read `CROWDWIFI_THREADS` from the
        // ambient environment; whatever it says, the result must not
        // oversubscribe the machine.
        let detected = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(resolve_threads(0) <= detected);
    }
}
