//! (AP, RSS) combination hypotheses (§4.3.3).
//!
//! The formulation cannot say how many APs exist nor which reading came
//! from which AP. Proposition 2 shows exhaustively testing every
//! combination is `Ω(M^M)` — intractable even for the paper's own
//! 60-reading windows. CrowdWiFi therefore keeps windows small *and* we
//! provide two assigners behind one trait:
//!
//! * [`ExhaustiveAssigner`] — the literal enumeration, feasible for tiny
//!   `M` (used in unit tests and as a correctness oracle),
//! * [`ClusterAssigner`] — tractable hypothesis generation: a
//!   deterministic k-means over (position, RSS-range) features plus a
//!   time-contiguous segmentation candidate, exploiting that drive-by
//!   readings from one AP are spatially and temporally bunched.

use crowdwifi_channel::{PathLossModel, RssReading};
use crowdwifi_geo::Point;

/// One hypothesis: `labels[i] ∈ 0..k` says reading `i` came from
/// hypothetical AP `labels[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    labels: Vec<usize>,
    k: usize,
}

impl Assignment {
    /// Creates an assignment, verifying every label is `< k` and all `k`
    /// labels are used (an unused AP hypothesis is a smaller-`k`
    /// hypothesis in disguise).
    pub fn new(labels: Vec<usize>, k: usize) -> Option<Self> {
        if labels.is_empty() || k == 0 || k > labels.len() {
            return None;
        }
        let mut used = vec![false; k];
        for &l in &labels {
            if l >= k {
                return None;
            }
            used[l] = true;
        }
        if !used.iter().all(|&u| u) {
            return None;
        }
        Some(Assignment { labels, k })
    }

    /// Label per reading.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of hypothetical APs.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Indices of the readings assigned to AP `ap`.
    pub fn group(&self, ap: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == ap)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Produces candidate (AP, RSS) assignments for a hypothesized count `k`.
pub trait Assigner {
    /// Candidate assignments of `readings` to `k` APs. May be empty when
    /// `k` is infeasible (e.g. `k > readings.len()`).
    fn candidate_assignments(&self, readings: &[RssReading], k: usize) -> Vec<Assignment>;

    /// Short name for logs/benches.
    fn name(&self) -> &'static str;
}

/// Literal enumeration of all `k^M` label vectors that use every label —
/// the Proposition 2 search space. Refuses windows larger than
/// `max_readings` (the count explodes as `M^M`).
#[derive(Debug, Clone)]
pub struct ExhaustiveAssigner {
    max_readings: usize,
}

impl ExhaustiveAssigner {
    /// Creates an exhaustive assigner for windows of at most
    /// `max_readings` readings (keep this ≤ ~8).
    pub fn new(max_readings: usize) -> Self {
        ExhaustiveAssigner { max_readings }
    }
}

impl Default for ExhaustiveAssigner {
    fn default() -> Self {
        ExhaustiveAssigner::new(8)
    }
}

impl Assigner for ExhaustiveAssigner {
    fn candidate_assignments(&self, readings: &[RssReading], k: usize) -> Vec<Assignment> {
        let m = readings.len();
        if m == 0 || k == 0 || k > m || m > self.max_readings {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut labels = vec![0usize; m];
        loop {
            if let Some(a) = Assignment::new(labels.clone(), k) {
                out.push(a);
            }
            // Odometer increment in base k.
            let mut pos = 0;
            loop {
                if pos == m {
                    return out;
                }
                labels[pos] += 1;
                if labels[pos] < k {
                    break;
                }
                labels[pos] = 0;
                pos += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "exhaustive"
    }
}

/// Tractable hypothesis generation for realistic windows.
///
/// Produces up to two candidates per `k`:
///
/// 1. a deterministic k-means (farthest-first seeding, fixed iteration
///    budget) over features `(x, y, w·d̂)` where `d̂` is the path-loss
///    inverse of the reading's RSS,
/// 2. a time-contiguous segmentation of the window into `k` equal runs —
///    the natural hypothesis for drive-by data, where the vehicle hears
///    one AP, then the next.
#[derive(Debug, Clone)]
pub struct ClusterAssigner {
    pathloss: PathLossModel,
    range_weight: f64,
    kmeans_iterations: usize,
}

impl ClusterAssigner {
    /// Creates a cluster assigner using `pathloss` to convert RSS to an
    /// estimated range feature.
    pub fn new(pathloss: PathLossModel) -> Self {
        ClusterAssigner {
            pathloss,
            range_weight: 0.5,
            kmeans_iterations: 25,
        }
    }

    /// Sets the weight of the RSS-derived range feature relative to the
    /// spatial coordinates (default 0.5).
    pub fn with_range_weight(mut self, w: f64) -> Self {
        self.range_weight = w.max(0.0);
        self
    }

    fn features(&self, readings: &[RssReading]) -> Vec<[f64; 3]> {
        readings
            .iter()
            .map(|r| {
                let d = self.pathloss.distance_for_rss(r.rss_dbm);
                [r.position.x, r.position.y, self.range_weight * d]
            })
            .collect()
    }

    fn kmeans(&self, feats: &[[f64; 3]], k: usize) -> Vec<usize> {
        let n = feats.len();
        // Farthest-first seeding from the feature centroid.
        let mut centers: Vec<[f64; 3]> = Vec::with_capacity(k);
        let mean = {
            let mut m = [0.0; 3];
            for f in feats {
                for (mi, fi) in m.iter_mut().zip(f) {
                    *mi += fi / n as f64;
                }
            }
            m
        };
        let far = |c: &[[f64; 3]], cand: &[f64; 3]| -> f64 {
            c.iter()
                .map(|x| dist3(x, cand))
                .fold(f64::INFINITY, f64::min)
        };
        // First center: farthest from the mean (deterministic).
        let first = (0..n)
            .max_by(|&a, &b| {
                dist3(&feats[a], &mean)
                    .partial_cmp(&dist3(&feats[b], &mean))
                    .expect("finite features")
            })
            .expect("non-empty features");
        centers.push(feats[first]);
        while centers.len() < k {
            let next = (0..n)
                .max_by(|&a, &b| {
                    far(&centers, &feats[a])
                        .partial_cmp(&far(&centers, &feats[b]))
                        .expect("finite features")
                })
                .expect("non-empty features");
            centers.push(feats[next]);
        }

        let mut labels = vec![0usize; n];
        for _ in 0..self.kmeans_iterations {
            let mut changed = false;
            for (i, f) in feats.iter().enumerate() {
                let best = (0..k)
                    .min_by(|&a, &b| {
                        dist3(&centers[a], f)
                            .partial_cmp(&dist3(&centers[b], f))
                            .expect("finite features")
                    })
                    .expect("k > 0");
                if labels[i] != best {
                    labels[i] = best;
                    changed = true;
                }
            }
            // Recompute centers; keep old center for empty clusters.
            let mut sums = vec![[0.0; 3]; k];
            let mut counts = vec![0usize; k];
            for (f, &l) in feats.iter().zip(&labels) {
                for (s, fi) in sums[l].iter_mut().zip(f) {
                    *s += fi;
                }
                counts[l] += 1;
            }
            for (c, (s, &cnt)) in centers.iter_mut().zip(sums.iter().zip(&counts)) {
                if cnt > 0 {
                    for (ci, si) in c.iter_mut().zip(s) {
                        *ci = si / cnt as f64;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        labels
    }
}

fn dist3(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Relabels `labels` so label ids are dense `0..k'` and returns the
/// number of distinct labels actually used.
fn densify(labels: &mut [usize]) -> usize {
    let mut map = std::collections::HashMap::new();
    for l in labels.iter_mut() {
        let next = map.len();
        let id = *map.entry(*l).or_insert(next);
        *l = id;
    }
    map.len()
}

impl Assigner for ClusterAssigner {
    fn candidate_assignments(&self, readings: &[RssReading], k: usize) -> Vec<Assignment> {
        let m = readings.len();
        if m == 0 || k == 0 || k > m {
            return Vec::new();
        }
        let mut out = Vec::new();

        if k == 1 {
            if let Some(a) = Assignment::new(vec![0; m], 1) {
                out.push(a);
            }
            return out;
        }

        // Candidate 1: k-means (may merge clusters; densify and accept
        // at the effective k).
        let feats = self.features(readings);
        let mut labels = self.kmeans(&feats, k);
        let used = densify(&mut labels);
        if used == k {
            if let Some(a) = Assignment::new(labels, k) {
                out.push(a);
            }
        }

        // Candidate 2: time-contiguous equal segmentation.
        let seg: Vec<usize> = (0..m).map(|i| (i * k / m).min(k - 1)).collect();
        if let Some(a) = Assignment::new(seg, k) {
            if !out.contains(&a) {
                out.push(a);
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "cluster"
    }
}

/// The Proposition 2 search-space size: the number of surjective
/// assignments of `m` RSS readings onto `k` APs (`k! · S(m, k)`, the
/// count of ordered set partitions), saturating at `u64::MAX`.
///
/// The total over `k = 1..=m` grows as `Ω(m^m)` — the paper's argument
/// for keeping windows small.
///
/// # Example
///
/// ```
/// use crowdwifi_core::assign::combination_count;
///
/// assert_eq!(combination_count(1, 4), 1);
/// assert_eq!(combination_count(2, 4), 14);
/// assert_eq!(combination_count(3, 4), 36);
/// assert_eq!(combination_count(4, 4), 24);
/// ```
pub fn combination_count(k: usize, m: usize) -> u64 {
    if k == 0 || k > m {
        return 0;
    }
    // Inclusion–exclusion: Σ_{j=0..k} (−1)^j C(k, j) (k − j)^m.
    let mut total: i128 = 0;
    for j in 0..=k {
        let sign: i128 = if j % 2 == 0 { 1 } else { -1 };
        let choose = binomial(k as u64, j as u64) as i128;
        let power = ((k - j) as u128)
            .saturating_pow(m as u32)
            .min(u64::MAX as u128) as i128;
        total += sign * choose * power;
    }
    total.clamp(0, u64::MAX as i128) as u64
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * (n - i) as u128 / (i + 1) as u128;
    }
    result.min(u64::MAX as u128) as u64
}

/// Convenience: positions of readings grouped under one assignment label
/// (used by recovery and tests).
pub fn group_positions(readings: &[RssReading], assignment: &Assignment, ap: usize) -> Vec<Point> {
    assignment
        .group(ap)
        .into_iter()
        .map(|i| readings[i].position)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading_at(x: f64, rss: f64, t: f64) -> RssReading {
        RssReading::new(Point::new(x, 0.0), rss, t)
    }

    #[test]
    fn assignment_validation() {
        assert!(Assignment::new(vec![0, 1, 0], 2).is_some());
        // Label out of range.
        assert!(Assignment::new(vec![0, 2], 2).is_none());
        // Unused label.
        assert!(Assignment::new(vec![0, 0], 2).is_none());
        assert!(Assignment::new(vec![], 1).is_none());
        // k exceeding reading count.
        assert!(Assignment::new(vec![0], 2).is_none());
    }

    #[test]
    fn exhaustive_counts_are_stirling_like() {
        let readings: Vec<RssReading> = (0..4)
            .map(|i| reading_at(i as f64, -60.0, i as f64))
            .collect();
        let a = ExhaustiveAssigner::default();
        // Surjections 4→1: 1, 4→2: 14, 4→3: 36, 4→4: 24.
        assert_eq!(a.candidate_assignments(&readings, 1).len(), 1);
        assert_eq!(a.candidate_assignments(&readings, 2).len(), 14);
        assert_eq!(a.candidate_assignments(&readings, 3).len(), 36);
        assert_eq!(a.candidate_assignments(&readings, 4).len(), 24);
        assert!(a.candidate_assignments(&readings, 5).is_empty());
    }

    #[test]
    fn combination_count_matches_enumeration() {
        // The analytic count must equal what the exhaustive assigner
        // enumerates, for every feasible (k, m) pair small enough to try.
        let a = ExhaustiveAssigner::default();
        for m in 1..=6usize {
            let readings: Vec<RssReading> = (0..m)
                .map(|i| reading_at(i as f64, -60.0, i as f64))
                .collect();
            for k in 1..=m {
                assert_eq!(
                    combination_count(k, m),
                    a.candidate_assignments(&readings, k).len() as u64,
                    "mismatch at k={k} m={m}"
                );
            }
        }
        assert_eq!(combination_count(0, 4), 0);
        assert_eq!(combination_count(5, 4), 0);
    }

    #[test]
    fn proposition_2_total_grows_superexponentially() {
        // Σ_k surjections(k, m) — the paper's Ω(m^m) search space.
        let total = |m: usize| -> u64 { (1..=m).map(|k| combination_count(k, m)).sum() };
        // Ordered Bell numbers: 1, 3, 13, 75, 541, 4683, ...
        assert_eq!(total(1), 1);
        assert_eq!(total(2), 3);
        assert_eq!(total(3), 13);
        assert_eq!(total(4), 75);
        assert_eq!(total(5), 541);
        assert_eq!(total(6), 4683);
        // Already enormous at the paper's window sizes.
        assert!(total(12) > 1_000_000_000);
    }

    #[test]
    fn exhaustive_refuses_large_windows() {
        let readings: Vec<RssReading> = (0..9)
            .map(|i| reading_at(i as f64, -60.0, i as f64))
            .collect();
        assert!(ExhaustiveAssigner::new(8)
            .candidate_assignments(&readings, 2)
            .is_empty());
    }

    #[test]
    fn cluster_assigner_separates_two_spatial_groups() {
        // Two clearly separated bunches along x.
        let mut readings = Vec::new();
        for i in 0..5 {
            readings.push(reading_at(i as f64, -50.0, i as f64));
        }
        for i in 0..5 {
            readings.push(reading_at(500.0 + i as f64, -50.0, 5.0 + i as f64));
        }
        let assigner = ClusterAssigner::new(PathLossModel::uci_campus());
        let cands = assigner.candidate_assignments(&readings, 2);
        assert!(!cands.is_empty());
        let a = &cands[0];
        // First five share a label, last five share the other.
        let first = a.labels()[0];
        assert!(a.labels()[..5].iter().all(|&l| l == first));
        assert!(a.labels()[5..].iter().all(|&l| l != first));
    }

    #[test]
    fn cluster_assigner_k1_is_trivial() {
        let readings: Vec<RssReading> = (0..3)
            .map(|i| reading_at(i as f64, -60.0, i as f64))
            .collect();
        let assigner = ClusterAssigner::new(PathLossModel::uci_campus());
        let cands = assigner.candidate_assignments(&readings, 1);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].labels(), &[0, 0, 0]);
    }

    #[test]
    fn segmentation_candidate_is_contiguous() {
        let readings: Vec<RssReading> = (0..6)
            .map(|i| reading_at(i as f64, -60.0, i as f64))
            .collect();
        let assigner = ClusterAssigner::new(PathLossModel::uci_campus());
        let cands = assigner.candidate_assignments(&readings, 3);
        // The segmentation candidate must exist and be non-decreasing.
        assert!(cands
            .iter()
            .any(|a| { a.labels().windows(2).all(|w| w[0] <= w[1]) }));
    }

    #[test]
    fn infeasible_k_yields_nothing() {
        let readings: Vec<RssReading> = (0..3)
            .map(|i| reading_at(i as f64, -60.0, i as f64))
            .collect();
        let assigner = ClusterAssigner::new(PathLossModel::uci_campus());
        assert!(assigner.candidate_assignments(&readings, 0).is_empty());
        assert!(assigner.candidate_assignments(&readings, 4).is_empty());
        assert!(assigner.candidate_assignments(&[], 1).is_empty());
    }

    #[test]
    fn group_positions_extracts_by_label() {
        let readings: Vec<RssReading> = (0..4)
            .map(|i| reading_at(i as f64, -60.0, i as f64))
            .collect();
        let a = Assignment::new(vec![0, 1, 0, 1], 2).unwrap();
        let g0 = group_positions(&readings, &a, 0);
        assert_eq!(g0, vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)]);
    }
}
