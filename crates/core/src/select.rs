//! Hypothesis scoring and BIC model selection (§4.3.5).
//!
//! For every hypothesized AP count `K` and every candidate (AP, RSS)
//! assignment, the round's readings are recovered per AP, centroid-
//! processed, and the resulting constellation is scored by the
//! Gaussian-mixture log-likelihood of the data penalized by BIC. The
//! maximizing hypothesis wins the round.

use crate::assign::{Assigner, Assignment};
use crate::recovery::{CsRecovery, WindowSensing};
use crate::Result;
use crowdwifi_channel::bic::{bic, free_params_for_ap_count};
use crowdwifi_channel::{GmmModel, RssReading};
use crowdwifi_geo::{Grid, Point};

/// The winning hypothesis of one sliding-window round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundEstimate {
    /// Estimated AP positions (length = `k`).
    pub aps: Vec<Point>,
    /// Chosen AP count.
    pub k: usize,
    /// GMM log-likelihood of the round's readings under `aps`.
    pub log_likelihood: f64,
    /// The BIC score that won.
    pub bic: f64,
    /// All candidate modes of the winning hypothesis's groups, including
    /// the losing sides of mirror-ambiguous recoveries. Consolidation
    /// feeds these to the global refinement with reduced credit so the
    /// true side stays available even when every window picked the
    /// ghost side (see `crate::refine`).
    pub alternates: Vec<Point>,
    /// How many (k, assignment) hypotheses the round materialized.
    pub hypotheses: usize,
    /// How many candidate constellations were scored across all
    /// hypotheses and EM passes before the BIC reduction picked this
    /// winner. Deterministic for a given round regardless of the thread
    /// count.
    pub candidates: usize,
}

/// Scores every hypothesis for one round and returns the BIC maximizer.
///
/// The (k, assignment) hypotheses are evaluated in parallel over up to
/// `threads` OS threads (`0` = auto, see [`crate::par::resolve_threads`])
/// — each hypothesis's EM refinement chain is independent — and reduced
/// in the sequential hypothesis order, so the winner (position bytes,
/// tie-breaks and all) is identical to a single-threaded run. All
/// hypotheses share the caller-provided [`WindowSensing`] workspace
/// (from [`CsRecovery::prepare_window`] over the same grid and
/// readings): the window's signature matrix is derived once and
/// per-group recoveries are memoized across hypotheses. The caller
/// keeps the workspace, so it can read the accumulated
/// [`WindowSensing::stats`] afterwards.
///
/// Returns `Ok(None)` when no hypothesis produced a usable constellation
/// (e.g. every recovery came back empty).
///
/// # Errors
///
/// Propagates recovery failures.
#[allow(clippy::too_many_arguments)]
pub fn estimate_round(
    readings: &[RssReading],
    grid: &Grid,
    gmm: &GmmModel,
    assigner: &dyn Assigner,
    recovery: &CsRecovery,
    sensing: &WindowSensing,
    max_k: usize,
    rel_threshold: f64,
    threads: usize,
) -> Result<Option<RoundEstimate>> {
    if readings.is_empty() {
        return Ok(None);
    }
    let m = readings.len();
    let data: Vec<(Point, f64)> = readings.iter().map(|r| (r.position, r.rss_dbm)).collect();

    // Materialize the hypothesis list up front (clustering is cheap
    // next to recovery); each entry evaluates independently.
    let hypotheses: Vec<(usize, Assignment)> = (1..=max_k.min(m))
        .flat_map(|k| {
            assigner
                .candidate_assignments(readings, k)
                .into_iter()
                .map(move |a| (k, a))
        })
        .collect();

    let evaluated = crate::par::try_par_map(&hypotheses, threads, |_, (k, assignment)| {
        evaluate_hypothesis(
            readings,
            &data,
            grid,
            gmm,
            recovery,
            sensing,
            *k,
            assignment.labels(),
            rel_threshold,
        )
    })?;

    // Order-identical reduction: candidates arrive in the same order the
    // sequential nested loop would have produced them, so the surviving
    // `best` is byte-identical to a single-threaded run.
    let mut best: Option<RoundEstimate> = None;
    let mut scored = 0usize;
    for candidate in evaluated.into_iter().flatten() {
        scored += 1;
        if best.as_ref().is_none_or(|b| candidate.bic > b.bic) {
            best = Some(candidate);
        }
    }
    if let Some(b) = best.as_mut() {
        b.hypotheses = hypotheses.len();
        b.candidates = scored;
    }
    Ok(best)
}

/// Evaluates one (k, assignment) hypothesis: up to two EM-style
/// refinement passes (re-assign each reading to the estimated AP that
/// best predicts its RSS and re-recover — the initial clustering can mix
/// readings across APs at group boundaries), returning every pass's
/// candidate in order. The chain never looks at other hypotheses'
/// results, which is what makes the hypothesis fan-out parallel-safe.
#[allow(clippy::too_many_arguments)]
fn evaluate_hypothesis(
    readings: &[RssReading],
    data: &[(Point, f64)],
    grid: &Grid,
    gmm: &GmmModel,
    recovery: &CsRecovery,
    sensing: &WindowSensing,
    k: usize,
    initial_labels: &[usize],
    rel_threshold: f64,
) -> Result<Vec<RoundEstimate>> {
    let m = readings.len();
    let mut labels = initial_labels.to_vec();
    let mut k_used = k;
    let mut candidates = Vec::new();

    for _ in 0..=2 {
        // Per-group recovery may be multi-modal (a colinear group cannot
        // tell which side of the road its AP is on); score every
        // combination of per-group modes and let the window-wide
        // likelihood decide.
        let Some(group_modes) =
            recover_group_modes(&labels, k_used, grid, recovery, sensing, rel_threshold)?
        else {
            break;
        };
        let Some(mut candidate) = best_mode_combination(&group_modes, data, gmm, grid, m) else {
            break;
        };

        let constellation = candidate.aps.clone();
        candidate.alternates = group_modes.iter().flatten().map(|m| m.position).collect();
        candidates.push(candidate);

        let new_labels = reassign_by_fit(readings, &constellation, gmm);
        if new_labels == labels {
            break;
        }
        k_used = new_labels.iter().max().map_or(0, |&l| l + 1);
        labels = new_labels;
    }
    Ok(candidates)
}

/// Enumerates combinations of per-group candidate modes (capped) and
/// returns the BIC-best constellation.
fn best_mode_combination(
    group_modes: &[Vec<crate::centroid::CentroidEstimate>],
    data: &[(Point, f64)],
    gmm: &GmmModel,
    grid: &Grid,
    m: usize,
) -> Option<RoundEstimate> {
    const COMBO_CAP: usize = 243;
    // Trim the widest groups until the product fits the cap.
    let mut counts: Vec<usize> = group_modes.iter().map(|g| g.len().max(1)).collect();
    loop {
        let product: usize = counts.iter().product();
        if product <= COMBO_CAP {
            break;
        }
        let widest = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .expect("non-empty groups");
        counts[widest] -= 1;
    }

    let mut best: Option<RoundEstimate> = None;
    let mut combo = vec![0usize; group_modes.len()];
    loop {
        // Build and score this combination.
        let aps: Vec<Point> = group_modes
            .iter()
            .zip(&combo)
            .map(|(modes, &i)| modes[i].position)
            .collect();
        // Two hypothesized APs recovered to (nearly) the same spot are
        // one AP counted twice: merge them so the hypothesis is scored
        // at its *effective* complexity.
        let aps = dedup_constellation(aps, 1.2 * grid.lattice());
        let k_eff = aps.len();
        let ll = gmm.log_likelihood(data, &aps);
        if ll.is_finite() {
            let score = bic(ll, free_params_for_ap_count(k_eff), m);
            if best.as_ref().is_none_or(|b| score > b.bic) {
                best = Some(RoundEstimate {
                    aps,
                    k: k_eff,
                    log_likelihood: ll,
                    bic: score,
                    alternates: Vec::new(),
                    hypotheses: 0,
                    candidates: 0,
                });
            }
        }
        // Odometer over the (possibly trimmed) mode counts.
        let mut pos = 0;
        loop {
            if pos == combo.len() {
                return best;
            }
            combo[pos] += 1;
            if combo[pos] < counts[pos] {
                break;
            }
            combo[pos] = 0;
            pos += 1;
        }
    }
}

/// Recovers candidate position modes for every non-empty group; `None`
/// when any group recovery is degenerate (empty recovered support).
/// Group recoveries go through the shared [`WindowSensing`] workspace,
/// so a grouping that recurs in another hypothesis (or EM pass) is
/// served from the memo instead of re-solved.
fn recover_group_modes(
    labels: &[usize],
    k: usize,
    grid: &Grid,
    recovery: &CsRecovery,
    sensing: &WindowSensing,
    rel_threshold: f64,
) -> Result<Option<Vec<Vec<crate::centroid::CentroidEstimate>>>> {
    // Groups are recovered one at a time so a degenerate group aborts
    // the hypothesis *before* solving its remaining siblings: extra
    // solves would be pure waste, and their memoized fields would leak
    // into the cross-window warm-start state
    // ([`crate::recovery::WarmStartCache::absorb`] folds every memoized
    // field of a finished window). Duplicate groupings across
    // hypotheses and EM passes still hit the [`WindowSensing`] memo;
    // callers without early-out semantics batch through
    // [`CsRecovery::recover_groups`] instead.
    let mut groups = Vec::with_capacity(k);
    for ap in 0..k {
        let idx: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == ap)
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            // Empty group: hypothesis effectively smaller k.
            continue;
        }
        let theta = recovery.recover_group(sensing, &idx)?;
        // Mode extraction scans the whole grid; groupings recur across
        // hypotheses and EM passes just like the recoveries themselves,
        // so the modes are memoized alongside them.
        let modes = sensing.modes_or_compute(&idx, rel_threshold, || {
            crate::centroid::candidate_modes(&theta, grid, rel_threshold, 2.0 * grid.lattice(), 3)
        });
        if modes.is_empty() {
            return Ok(None);
        }
        groups.push(modes);
    }
    if groups.is_empty() {
        return Ok(None);
    }
    Ok(Some(groups))
}

/// Re-assigns each reading to the estimated AP whose path-loss
/// prediction best matches the observed RSS (ties broken toward the
/// nearer AP by the prediction itself), then densifies labels.
fn reassign_by_fit(readings: &[RssReading], aps: &[Point], gmm: &GmmModel) -> Vec<usize> {
    let mut labels: Vec<usize> = readings
        .iter()
        .map(|r| {
            (0..aps.len())
                .min_by(|&a, &b| {
                    let ea =
                        (r.rss_dbm - gmm.pathloss().mean_rss(r.position.distance(aps[a]))).abs();
                    let eb =
                        (r.rss_dbm - gmm.pathloss().mean_rss(r.position.distance(aps[b]))).abs();
                    ea.partial_cmp(&eb).expect("finite RSS errors")
                })
                .expect("non-empty constellation")
        })
        .collect();
    // Densify so labels are contiguous 0..k'.
    let mut map = std::collections::HashMap::new();
    for l in labels.iter_mut() {
        let next = map.len();
        *l = *map.entry(*l).or_insert(next);
    }
    labels
}

/// Greedily merges constellation points closer than `radius` (averaging
/// merged positions) until all pairwise distances are at least `radius`.
fn dedup_constellation(mut aps: Vec<Point>, radius: f64) -> Vec<Point> {
    loop {
        let mut merged = false;
        'outer: for i in 0..aps.len() {
            for j in (i + 1)..aps.len() {
                if aps[i].distance(aps[j]) < radius {
                    let mid = aps[i].midpoint(aps[j]);
                    aps[i] = mid;
                    aps.swap_remove(j);
                    merged = true;
                    break 'outer;
                }
            }
        }
        if !merged {
            return aps;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::ClusterAssigner;
    use crowdwifi_channel::PathLossModel;
    use crowdwifi_geo::Rect;

    fn setup() -> (Grid, GmmModel, ClusterAssigner, CsRecovery) {
        let model = PathLossModel::uci_campus();
        let grid = Grid::new(
            Rect::new(Point::new(-20.0, -20.0), Point::new(220.0, 80.0)).unwrap(),
            10.0,
        )
        .unwrap();
        let gmm = GmmModel::new(model, 0.05).unwrap();
        let assigner = ClusterAssigner::new(model);
        let recovery = CsRecovery::new(model, 100.0, -95.0);
        (grid, gmm, assigner, recovery)
    }

    fn clean_readings(aps: &[Point], positions: &[Point]) -> Vec<RssReading> {
        // Each position hears its nearest AP, fading-free.
        let model = PathLossModel::uci_campus();
        positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let nearest = aps
                    .iter()
                    .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                    .unwrap();
                RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
            })
            .collect()
    }

    /// Staggered lane positions: keeps the route non-colinear so the
    /// recovery's mirror ambiguity (see `recovery` docs) cannot bite.
    fn staggered(i: usize, spacing: f64) -> Point {
        Point::new(
            spacing * i as f64,
            if (i / 4).is_multiple_of(2) { 0.0 } else { 12.0 },
        )
    }

    #[test]
    fn selects_k1_for_single_ap_data() {
        let (grid, gmm, assigner, recovery) = setup();
        let ap = grid.point(grid.nearest_index(Point::new(50.0, 30.0)));
        let positions: Vec<Point> = (0..12).map(|i| staggered(i, 8.0)).collect();
        let readings = clean_readings(&[ap], &positions);
        let sensing = recovery.prepare_window(&grid, &readings);
        let est = estimate_round(
            &readings, &grid, &gmm, &assigner, &recovery, &sensing, 3, 0.3, 2,
        )
        .unwrap()
        .expect("a hypothesis must win");
        assert_eq!(est.k, 1, "BIC should pick one AP, got {est:?}");
        assert!(est.aps[0].distance(ap) < 15.0);
        assert!(est.hypotheses >= 3, "expected all k hypothesized");
        assert!(est.candidates >= est.hypotheses);
        let stats = sensing.stats();
        // `>=`, not `==`: a group with no reachable grid cell counts a
        // lookup but neither a hit nor a solve (trivial zero solution).
        assert!(stats.lookups >= stats.hits + stats.solves);
        assert!(stats.solves > 0);
    }

    #[test]
    fn selects_k2_for_two_separated_aps() {
        let (grid, gmm, assigner, recovery) = setup();
        let ap1 = grid.point(grid.nearest_index(Point::new(20.0, 30.0)));
        let ap2 = grid.point(grid.nearest_index(Point::new(180.0, 30.0)));
        let positions: Vec<Point> = (0..20).map(|i| staggered(i, 10.0)).collect();
        let readings = clean_readings(&[ap1, ap2], &positions);
        let sensing = recovery.prepare_window(&grid, &readings);
        let est = estimate_round(
            &readings, &grid, &gmm, &assigner, &recovery, &sensing, 4, 0.3, 2,
        )
        .unwrap()
        .expect("a hypothesis must win");
        assert_eq!(est.k, 2, "BIC should pick two APs, got k={}", est.k);
        // Each true AP matched by some estimate within ~1.5 cells.
        for true_ap in [ap1, ap2] {
            let d = est
                .aps
                .iter()
                .map(|a| a.distance(true_ap))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 16.0, "true AP {true_ap} unmatched (nearest {d:.1} m)");
        }
    }

    #[test]
    fn empty_round_yields_none() {
        let (grid, gmm, assigner, recovery) = setup();
        let sensing = recovery.prepare_window(&grid, &[]);
        let est =
            estimate_round(&[], &grid, &gmm, &assigner, &recovery, &sensing, 3, 0.3, 1).unwrap();
        assert!(est.is_none());
    }
}
