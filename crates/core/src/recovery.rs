//! CS problem construction and Proposition-1 orthogonalized recovery
//! (§4.2.2).
//!
//! For one hypothesized AP with readings at positions `p₁…p_M` and
//! values `r₁…r_M`, the sensing model is `y = Φ_k Ψ θ + ε` where row `i`
//! of `A = Φ_k Ψ` is the model RSS from every grid point evaluated at
//! `pᵢ`, and `θ` is the 1-sparse grid indicator of the AP.
//!
//! Two engineering details (documented in DESIGN.md):
//!
//! * **dBm shift.** `Ψ` entries are dBm values (negative); both `A` and
//!   `y` are shifted by the detection floor so the problem is
//!   non-negative and "large coefficient = strong signal". For an
//!   exactly-1-sparse `θ` the shift is exact, not an approximation.
//! * **Column pruning.** An AP that was heard at position `pᵢ` must lie
//!   within radio range of `pᵢ`; grid columns outside the intersection
//!   of the readings' range disks cannot carry mass and are dropped
//!   before the solve, which both sharpens and accelerates recovery.
//!
//! The orthogonalization follows Proposition 1 exactly: with
//! `Q = orth(Aᵀ)ᵀ` and `T = Q A†`, the transformed system
//! `y' = T y = Q θ + ε'` has orthonormal rows, restoring the incoherence
//! ℓ1 recovery needs (and, as a bonus, giving the proximal solver a unit
//! Lipschitz constant).

use crate::{CoreError, Result};
use crowdwifi_channel::{PathLossModel, RssReading};
use crowdwifi_geo::{Grid, Point};
use crowdwifi_linalg::qr::orth;
use crowdwifi_linalg::svd::pseudo_inverse;
use crowdwifi_linalg::{Matrix, Svd};
use crowdwifi_sparsesolve::{AnySolver, Fista, SolverWorkspace, SparseRecovery};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cumulative memo and solver statistics of one [`WindowSensing`]
/// workspace, read with [`WindowSensing::stats`].
///
/// Counts accumulate through relaxed atomics, so totals are exact under
/// concurrent hypothesis evaluation — but *which* lookups hit the memo
/// depends on thread scheduling (two threads can race to first-solve
/// the same group), so `hits`/`solves` are only run-reproducible with
/// one worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SensingStats {
    /// Group-recovery requests served (memo hits + solves).
    pub lookups: u64,
    /// Requests answered from the memo.
    pub hits: u64,
    /// Requests that ran the ℓ1 solver.
    pub solves: u64,
    /// Total solver iterations across all solves.
    pub solver_iterations: u64,
    /// Solves that hit the iteration cap without converging.
    pub unconverged: u64,
    /// Columns eliminated by gap-safe screening across all solves.
    pub screened_cols: u64,
    /// Iteration-budget headroom left by early-converged solves.
    pub iterations_saved: u64,
    /// Solves seeded from a previous window's warm-start field.
    pub warm_seeded: u64,
}

impl SensingStats {
    /// Adds another window's totals into `self` (used by the pipeline to
    /// aggregate per-drive statistics into the report).
    pub fn merge(&mut self, other: &SensingStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.solves += other.solves;
        self.solver_iterations += other.solver_iterations;
        self.unconverged += other.unconverged;
        self.screened_cols += other.screened_cols;
        self.iterations_saved += other.iterations_saved;
        self.warm_seeded += other.warm_seeded;
    }
}

/// Solver-acceleration switches threaded from [`crate::OnlineCsConfig`]
/// down to the per-group ℓ1 solves (see DESIGN.md, "Solver
/// acceleration").
///
/// All features preserve the recovered support: gap-safe screening only
/// discards columns that are provably zero in every optimum, the
/// duality-gap stop bounds suboptimality explicitly, warm starts change
/// the initial iterate but not the fixed point, and the Gram/fixed-
/// Lipschitz paths are exact algebraic rewrites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverAccel {
    /// Re-check gap-safe screening as the duality gap tightens.
    pub screening: bool,
    /// Relative duality-gap stopping tolerance (`0` disables the gap
    /// stop and keeps the solver's own stopping rule).
    pub gap_rel: f64,
    /// Precompute Gram products (`ΦᵀΦ`, `Φᵀy`) and use the fused
    /// Gram-residual gradient update.
    pub gram: bool,
    /// Seed each window's solves from the previous window's solution
    /// field. Forces the window loop serial (windows must be solved in
    /// drive order to chain); per-window hypothesis fan-out is
    /// unaffected.
    pub warm_start: bool,
}

impl SolverAccel {
    /// Every acceleration feature on — the pipeline default.
    ///
    /// `gap_rel = 1e-3` certifies each solve to 0.1 % relative
    /// suboptimality, far inside what the matched-filter debias
    /// tolerates (the recovered support is unchanged; see the
    /// pipeline-level equivalence tests and `tests/solver_accel.rs`).
    pub fn enabled() -> Self {
        SolverAccel {
            screening: true,
            gap_rel: 1e-3,
            gram: true,
            warm_start: true,
        }
    }

    /// Every acceleration feature off (the pre-acceleration hot path,
    /// kept as the benchmark baseline and the conservative fallback).
    pub fn disabled() -> Self {
        SolverAccel {
            screening: false,
            gap_rel: 0.0,
            gram: false,
            warm_start: false,
        }
    }

    /// Whether any feature is on.
    pub fn is_active(&self) -> bool {
        self.screening || self.gap_rel > 0.0 || self.gram || self.warm_start
    }
}

impl Default for SolverAccel {
    fn default() -> Self {
        Self::enabled()
    }
}

/// Cross-window warm-start state: a sparse snapshot of the previous
/// window's solved ℓ1 fields, re-projected onto the next window's grid.
///
/// Consecutive 75 %-overlapping windows solve nearly the same recovery
/// problems, but each window builds its own lattice from its own
/// reference points, so solutions cannot be copied index-for-index.
/// [`WarmStartCache::absorb`] folds every memoized *raw* solver field of
/// a finished window (elementwise max — order-independent, hence
/// deterministic despite hash-map iteration) and keeps the dominant
/// entries as `(position, value)` pairs; [`WarmStartCache::project`]
/// snaps them onto the next grid via nearest-lattice lookup.
#[derive(Debug, Clone, Default)]
pub struct WarmStartCache {
    entries: Vec<(Point, f64)>,
}

/// Keep at most this many warm-start entries per window (by value).
const WARM_MAX_ENTRIES: usize = 512;
/// Drop warm entries below this fraction of the window's peak value.
const WARM_REL_CUTOFF: f64 = 1e-3;

impl WarmStartCache {
    /// An empty cache (the first window always cold-starts).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of retained `(position, value)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Replaces the cache with the dominant solved coefficients of a
    /// finished window (elementwise max over every memoized raw field).
    /// A window that solved nothing clears the cache: stale seeds from
    /// two windows back would describe APs the vehicle already passed.
    pub fn absorb(&mut self, grid: &Grid, sensing: &WindowSensing) {
        self.entries.clear();
        let Some(field) = sensing.raw_field_max() else {
            return;
        };
        let peak = field.iter().cloned().fold(0.0_f64, f64::max);
        if peak <= 0.0 {
            return;
        }
        let cutoff = peak * WARM_REL_CUTOFF;
        for (j, &v) in field.iter().enumerate() {
            if v >= cutoff {
                self.entries.push((grid.point(j), v));
            }
        }
        if self.entries.len() > WARM_MAX_ENTRIES {
            // Deterministic order: by value descending, grid order on ties.
            self.entries
                .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            self.entries.truncate(WARM_MAX_ENTRIES);
        }
    }

    /// Projects the cached field onto `grid` (length `grid.len()`),
    /// taking the max when two entries snap to the same lattice point
    /// and dropping entries that fall outside the grid. Returns `None`
    /// when nothing lands on the grid.
    pub fn project(&self, grid: &Grid) -> Option<Vec<f64>> {
        if self.entries.is_empty() || grid.is_empty() {
            return None;
        }
        let reach = grid.cell_diagonal();
        let mut field = vec![0.0_f64; grid.len()];
        let mut any = false;
        for &(p, v) in &self.entries {
            let j = grid.nearest_index(p);
            if grid.point(j).distance(p) <= reach {
                field[j] = field[j].max(v);
                any = true;
            }
        }
        any.then_some(field)
    }
}

/// Memoized candidate-mode extractions, keyed by reading-index set and
/// the relative-threshold bits.
type ModesMemo = HashMap<(Vec<usize>, u64), Vec<crate::centroid::CentroidEstimate>>;

/// Precomputed per-window sensing state shared by every hypothesis.
///
/// One sliding-window round scores dozens of (k, assignment) hypotheses,
/// and each hypothesis re-derives the same physics: distances from
/// every reading to every grid point, and the path-loss signature
/// matrix built from them. [`CsRecovery::prepare_window`] computes both
/// once; [`CsRecovery::recover_group`] then assembles a group's pruned
/// sensing matrix by *indexing* instead of re-evaluating the model, and
/// memoizes whole group recoveries by their reading-index set (the same
/// grouping recurs across hypothesized k values and EM refinement
/// passes).
///
/// The memo is behind a [`Mutex`] so concurrent hypothesis evaluation
/// can share it; recovery is a pure function of the index set, so the
/// cache stays deterministic regardless of which thread fills an entry
/// first.
#[derive(Debug)]
pub struct WindowSensing {
    /// `m × n` distances from reading `i` to grid point `j`.
    dist: Matrix,
    /// `m × n` floor-shifted model RSS (the full, unpruned `A`).
    sig: Matrix,
    /// Floor-shifted observed RSS per reading.
    shifted_rss: Vec<f64>,
    /// Warm-start field projected onto this window's grid (set by
    /// [`CsRecovery::prepare_window_seeded`]; `None` cold-starts).
    warm_field: Option<Vec<f64>>,
    /// Completed group recoveries keyed by sorted reading-index set.
    memo: Mutex<HashMap<Vec<usize>, MemoEntry>>,
    /// Memoized candidate-mode extractions keyed by reading-index set
    /// and threshold bits (modes are fully determined by both, since
    /// the recovered indicator itself is memoized by index set).
    modes_memo: Mutex<ModesMemo>,
    /// Group-recovery requests served.
    lookups: AtomicU64,
    /// Requests answered from the memo.
    hits: AtomicU64,
    /// Requests that ran the solver.
    solves: AtomicU64,
    /// Total solver iterations across all solves.
    solver_iterations: AtomicU64,
    /// Solves that hit the iteration cap.
    unconverged: AtomicU64,
    /// Columns eliminated by gap-safe screening.
    screened_cols: AtomicU64,
    /// Iteration-budget headroom left by early stops.
    iterations_saved: AtomicU64,
    /// Solves seeded from the warm-start field.
    warm_seeded: AtomicU64,
}

/// One memoized group recovery: the debiased grid indicator handed to
/// hypothesis scoring, plus the raw (pre-debias, normalized-column) ℓ1
/// solution the next window's warm starts are built from.
#[derive(Debug, Clone)]
struct MemoEntry {
    theta: Arc<Vec<f64>>,
    raw: Arc<Vec<f64>>,
}

impl WindowSensing {
    /// Number of readings this workspace was prepared for.
    pub fn readings(&self) -> usize {
        self.dist.rows()
    }

    /// Number of grid points this workspace was prepared for.
    pub fn grid_len(&self) -> usize {
        self.dist.cols()
    }

    /// Number of distinct group recoveries cached so far.
    pub fn cached_groups(&self) -> usize {
        self.memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Returns the memoized candidate modes for a group, running
    /// `compute` and caching its result on first request. The lock is
    /// dropped while `compute` runs, so two hypotheses racing on the
    /// same group may both compute — they produce identical results
    /// (mode extraction is deterministic in the memoized indicator),
    /// and last-write-wins is harmless.
    pub fn modes_or_compute(
        &self,
        idx: &[usize],
        rel_threshold: f64,
        compute: impl FnOnce() -> Vec<crate::centroid::CentroidEstimate>,
    ) -> Vec<crate::centroid::CentroidEstimate> {
        let key = (idx.to_vec(), rel_threshold.to_bits());
        if let Some(modes) = self
            .modes_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            return modes.clone();
        }
        let modes = compute();
        self.modes_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, modes.clone());
        modes
    }

    /// Cumulative memo and solver statistics (see [`SensingStats`]).
    pub fn stats(&self) -> SensingStats {
        SensingStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            solves: self.solves.load(Ordering::Relaxed),
            solver_iterations: self.solver_iterations.load(Ordering::Relaxed),
            unconverged: self.unconverged.load(Ordering::Relaxed),
            screened_cols: self.screened_cols.load(Ordering::Relaxed),
            iterations_saved: self.iterations_saved.load(Ordering::Relaxed),
            warm_seeded: self.warm_seeded.load(Ordering::Relaxed),
        }
    }

    /// Whether this window was prepared with a warm-start field.
    pub fn is_seeded(&self) -> bool {
        self.warm_field.is_some()
    }

    /// Elementwise max of every memoized raw solver field, or `None`
    /// when no group has been solved. Max-folding is order-independent,
    /// so the result is deterministic despite hash-map iteration.
    fn raw_field_max(&self) -> Option<Vec<f64>> {
        let memo = self
            .memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out: Option<Vec<f64>> = None;
        for entry in memo.values() {
            match &mut out {
                None => out = Some(entry.raw.as_ref().clone()),
                Some(acc) => {
                    for (a, &r) in acc.iter_mut().zip(entry.raw.iter()) {
                        *a = a.max(r);
                    }
                }
            }
        }
        out
    }
}

/// Orthogonalized ℓ1 recovery of one AP's grid indicator.
#[derive(Debug, Clone)]
pub struct CsRecovery {
    pathloss: PathLossModel,
    floor_dbm: f64,
    radio_range: f64,
    solver: AnySolver,
    orthogonalize: bool,
    fused_factorization: bool,
    accel: SolverAccel,
}

impl CsRecovery {
    /// Creates a recovery engine.
    ///
    /// `radio_range` bounds how far an AP can be from a position that
    /// heard it (used for column pruning); `floor_dbm` is the detection
    /// floor used as the dBm shift origin.
    pub fn new(pathloss: PathLossModel, radio_range: f64, floor_dbm: f64) -> Self {
        CsRecovery {
            pathloss,
            floor_dbm,
            radio_range,
            solver: AnySolver::from(
                Fista::default()
                    .with_max_iterations(400)
                    .with_tolerance(1e-7)
                    .expect("default tolerance is valid"),
            ),
            orthogonalize: true,
            fused_factorization: true,
            accel: SolverAccel::disabled(),
        }
    }

    /// Selects how the Proposition-1 operator is built (default: fused).
    ///
    /// The fused path runs **one** SVD of the normalized sensing matrix
    /// and reads both pieces off it — `Q = V_rᵀ` (an orthonormal row
    /// basis of the row space) and `y' = Q A† y = Σ_r⁻¹ U_rᵀ y` — where
    /// the unfused path pays a Gram–Schmidt orthogonalization *plus* a
    /// separate SVD for `A†` *plus* an `r × pruned-N × m` matmul for
    /// `T = Q A†`. Both produce an orthonormal row basis of the same
    /// row space, so the ℓ1 program (and its recovered support) is the
    /// same; only the basis rotation — and hence the exact float path —
    /// differs. The unfused path is kept for the kernel-acceleration
    /// bench baseline and the support-equivalence tests.
    pub fn with_fused_factorization(mut self, fused: bool) -> Self {
        self.fused_factorization = fused;
        self
    }

    /// Whether the fused one-SVD factorization is active.
    pub fn fused_factorization(&self) -> bool {
        self.fused_factorization
    }

    /// Sets the solver-acceleration configuration (default: all off —
    /// the pipeline opts in via [`crate::OnlineCsConfig::accel`]).
    pub fn with_accel(mut self, accel: SolverAccel) -> Self {
        self.accel = accel;
        self
    }

    /// The active acceleration configuration.
    pub fn accel(&self) -> SolverAccel {
        self.accel
    }

    /// Replaces the ℓ1 solver (default: FISTA). Accepts anything that
    /// converts into [`AnySolver`], e.g. a configured [`Fista`] or an
    /// `Omp` for the greedy ablation.
    pub fn with_solver(mut self, solver: impl Into<AnySolver>) -> Self {
        self.solver = solver.into();
        self
    }

    /// The configured solver's name (for logs and ablation tables).
    pub fn solver_name(&self) -> &'static str {
        self.solver.name()
    }

    /// Disables the Proposition-1 orthogonalization (ablation switch for
    /// the benches; recovery quality degrades as the paper predicts).
    pub fn without_orthogonalization(mut self) -> Self {
        self.orthogonalize = false;
        self
    }

    /// Whether orthogonalization is enabled.
    pub fn orthogonalize(&self) -> bool {
        self.orthogonalize
    }

    /// The radio range used for column pruning.
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// Model RSS (shifted) from grid point `j` heard at `position`.
    fn shifted_model_rss(&self, position: Point, grid_point: Point) -> f64 {
        (self.pathloss.mean_rss(position.distance(grid_point)) - self.floor_dbm).max(0.0)
    }

    /// Recovers the grid indicator `θ` (length `grid.len()`) of a single
    /// hypothesized AP from the readings assigned to it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `positions` and `rss`
    /// have different lengths or are empty, and solver/linalg failures
    /// otherwise.
    pub fn recover_single_ap(
        &self,
        grid: &Grid,
        positions: &[Point],
        rss_dbm: &[f64],
    ) -> Result<Vec<f64>> {
        if positions.is_empty() || positions.len() != rss_dbm.len() {
            return Err(CoreError::InvalidConfig {
                field: "readings",
                reason: format!(
                    "need equal, non-zero counts of positions ({}) and rss ({})",
                    positions.len(),
                    rss_dbm.len()
                ),
            });
        }
        let n = grid.len();

        // Column pruning: the AP must be within radio range of every
        // position that heard it.
        let candidates: Vec<usize> = (0..n)
            .filter(|&j| {
                let gp = grid.point(j);
                positions.iter().all(|p| p.distance(gp) <= self.radio_range)
            })
            .collect();
        if candidates.is_empty() {
            // Inconsistent hypothesis (no grid point can explain all
            // readings): return the zero vector, the caller's BIC will
            // discard it.
            return Ok(vec![0.0; n]);
        }

        // A over the pruned columns; y shifted to the same origin.
        let m = positions.len();
        let a_raw = Matrix::from_fn(m, candidates.len(), |i, jc| {
            self.shifted_model_rss(positions[i], grid.point(candidates[jc]))
        });
        let y: Vec<f64> = rss_dbm
            .iter()
            .map(|&r| (r - self.floor_dbm).max(0.0))
            .collect();
        Ok(self.solve_pruned(&a_raw, &y, &candidates, n, None)?.theta)
    }

    /// Precomputes the window-wide distance and signature matrices (and
    /// the shifted observation vector) shared by every hypothesis of one
    /// round. See [`WindowSensing`].
    pub fn prepare_window(&self, grid: &Grid, readings: &[RssReading]) -> WindowSensing {
        let m = readings.len();
        let n = grid.len();
        let dist = Matrix::from_fn(m, n, |i, j| readings[i].position.distance(grid.point(j)));
        // Evaluate the path-loss model from the *same* distances so a
        // workspace recovery is bit-identical to the direct path.
        let sig = Matrix::from_fn(m, n, |i, j| {
            (self.pathloss.mean_rss(dist.get(i, j)) - self.floor_dbm).max(0.0)
        });
        let shifted_rss = readings
            .iter()
            .map(|r| (r.rss_dbm - self.floor_dbm).max(0.0))
            .collect();
        WindowSensing {
            dist,
            sig,
            shifted_rss,
            warm_field: None,
            memo: Mutex::new(HashMap::new()),
            modes_memo: Mutex::new(HashMap::new()),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            solver_iterations: AtomicU64::new(0),
            unconverged: AtomicU64::new(0),
            screened_cols: AtomicU64::new(0),
            iterations_saved: AtomicU64::new(0),
            warm_seeded: AtomicU64::new(0),
        }
    }

    /// [`CsRecovery::prepare_window`] plus a warm-start seed: the
    /// previous window's [`WarmStartCache`] is projected onto this
    /// window's grid and every group solve starts from the projected
    /// field restricted to its candidate columns. Warm starts change
    /// only the iteration count, not the fixed point the solver
    /// converges to.
    pub fn prepare_window_seeded(
        &self,
        grid: &Grid,
        readings: &[RssReading],
        warm: &WarmStartCache,
    ) -> WindowSensing {
        let mut sensing = self.prepare_window(grid, readings);
        sensing.warm_field = warm.project(grid);
        sensing
    }

    /// Recovers the grid indicator of one hypothesized AP from the
    /// readings at `idx` (indices into the window `sensing` was prepared
    /// for), reusing the precomputed signature matrix and memoizing the
    /// result by index set.
    ///
    /// Produces exactly the same `θ` as [`CsRecovery::recover_single_ap`]
    /// called on the corresponding position/RSS subsets.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty or out-of-range
    /// index set, and solver/linalg failures otherwise.
    pub fn recover_group(&self, sensing: &WindowSensing, idx: &[usize]) -> Result<Arc<Vec<f64>>> {
        let m_all = sensing.readings();
        if idx.is_empty() || idx.iter().any(|&i| i >= m_all) {
            return Err(CoreError::InvalidConfig {
                field: "idx",
                reason: format!("need non-empty indices within 0..{m_all}, got {idx:?}"),
            });
        }
        sensing.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(hit) = sensing
            .memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(idx)
        {
            sensing.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.theta.clone());
        }

        let n = sensing.grid_len();
        let candidates: Vec<usize> = (0..n)
            .filter(|&j| {
                idx.iter()
                    .all(|&i| sensing.dist.get(i, j) <= self.radio_range)
            })
            .collect();
        let (theta, raw, solve_stats) = if candidates.is_empty() {
            (vec![0.0; n], vec![0.0; n], None)
        } else {
            let a_raw = Matrix::from_fn(idx.len(), candidates.len(), |r, jc| {
                sensing.sig.get(idx[r], candidates[jc])
            });
            let y: Vec<f64> = idx.iter().map(|&i| sensing.shifted_rss[i]).collect();
            let warm = if self.accel.warm_start {
                sensing.warm_field.as_deref()
            } else {
                None
            };
            let solve = self.solve_pruned(&a_raw, &y, &candidates, n, warm)?;
            let stats = (
                solve.iterations,
                solve.converged,
                solve.screened_cols,
                solve.iterations_saved,
                solve.warm_used,
            );
            (solve.theta, solve.raw, Some(stats))
        };
        let entry = MemoEntry {
            theta: Arc::new(theta),
            raw: Arc::new(raw),
        };
        // Two workers can race past the memo check and solve the same
        // group; the solves are identical (recovery is a pure function
        // of the index set, and the warm field is fixed per window), so
        // only the insertion winner records its stats — that keeps the
        // drive-level iteration totals schedule-independent. The loser
        // counts as a hit: its caller is served from the memo.
        let mut memo = sensing
            .memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match memo.entry(idx.to_vec()) {
            std::collections::hash_map::Entry::Occupied(hit) => {
                sensing.hits.fetch_add(1, Ordering::Relaxed);
                Ok(hit.get().theta.clone())
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                if let Some((iterations, converged, screened, saved, warm_used)) = solve_stats {
                    sensing.solves.fetch_add(1, Ordering::Relaxed);
                    sensing
                        .solver_iterations
                        .fetch_add(iterations as u64, Ordering::Relaxed);
                    if !converged {
                        sensing.unconverged.fetch_add(1, Ordering::Relaxed);
                    }
                    sensing
                        .screened_cols
                        .fetch_add(screened as u64, Ordering::Relaxed);
                    sensing
                        .iterations_saved
                        .fetch_add(saved as u64, Ordering::Relaxed);
                    if warm_used {
                        sensing.warm_seeded.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let theta = entry.theta.clone();
                slot.insert(entry);
                Ok(theta)
            }
        }
    }

    /// Recovers a whole window's worth of hypothesis groups — the
    /// batched counterpart of [`CsRecovery::recover_group`], returning
    /// one indicator per input group, aligned with `groups`.
    ///
    /// A hypothesis fan-out repeats the same reading-index set across
    /// k values and EM passes, so the batch is deduplicated first:
    /// each distinct set is solved (or served from the window memo)
    /// exactly once and its `Arc` is cloned into every duplicate slot.
    /// Results are identical to calling `recover_group` per slot — the
    /// memo already guarantees one solve per distinct set — but the
    /// dedup keeps a parallel fan-out from racing duplicate solves of
    /// the same group within one batch.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`CsRecovery::recover_group`], applied
    /// to every group.
    pub fn recover_groups(
        &self,
        sensing: &WindowSensing,
        groups: &[Vec<usize>],
    ) -> Result<Vec<Arc<Vec<f64>>>> {
        let mut solved: HashMap<&[usize], Arc<Vec<f64>>> = HashMap::with_capacity(groups.len());
        let mut out = Vec::with_capacity(groups.len());
        for idx in groups {
            let theta = match solved.get(idx.as_slice()) {
                Some(hit) => hit.clone(),
                None => {
                    let theta = self.recover_group(sensing, idx)?;
                    solved.insert(idx.as_slice(), theta.clone());
                    theta
                }
            };
            out.push(theta);
        }
        Ok(out)
    }

    /// Applies the active [`SolverAccel`] switches to the configured
    /// solver, returning `None` when the stock solver should run
    /// unchanged (acceleration off, or a solver family with no
    /// accelerated path). `orthonormal` marks the Proposition-1 branch,
    /// where `Q` has orthonormal rows and the proximal Lipschitz
    /// constant is exactly 1 — pinning it skips the power iteration
    /// every solve would otherwise spend estimating it.
    fn accel_solver(&self, orthonormal: bool) -> Option<AnySolver> {
        if !self.accel.is_active() {
            return None;
        }
        match &self.solver {
            AnySolver::Fista(f) => {
                let mut f = f
                    .clone()
                    .with_screening(self.accel.screening)
                    .with_gram(self.accel.gram);
                if self.accel.gap_rel > 0.0 {
                    f = f.with_gap_tolerance(self.accel.gap_rel).ok()?;
                }
                if orthonormal {
                    f = f.with_fixed_lipschitz(1.0).ok()?;
                }
                Some(AnySolver::Fista(f))
            }
            AnySolver::AdmmLasso(s) if self.accel.gap_rel > 0.0 => s
                .clone()
                .with_gap_tolerance(self.accel.gap_rel)
                .ok()
                .map(AnySolver::AdmmLasso),
            // OMP / IRLS / basis pursuit have no screened or gap-stopped
            // path; warm starts still flow through the shared workspace.
            _ => None,
        }
    }

    /// Normalizes, (optionally) orthogonalizes, solves and debiases the
    /// pruned system; scatters back to the full `n`-length grid. Shared
    /// by the direct and workspace recovery paths. `warm` is a full-grid
    /// raw solver field from the previous window; its restriction to the
    /// candidate columns seeds the solve when it carries any mass.
    fn solve_pruned(
        &self,
        a_raw: &Matrix,
        y: &[f64],
        candidates: &[usize],
        n: usize,
        warm: Option<&[f64]>,
    ) -> Result<GroupSolve> {
        let m = a_raw.rows();
        // Column normalization: RSS signatures of near columns have much
        // larger norms than far ones, which biases ℓ1 toward
        // trajectory-adjacent grid points. Normalizing restores the
        // unit-column convention CS theory assumes; the solution is
        // un-scaled afterwards so θ keeps its indicator interpretation.
        let norms: Vec<f64> = (0..candidates.len())
            .map(|j| a_raw.col_norm2(j).max(1e-12))
            .collect();
        let a = Matrix::from_fn(m, candidates.len(), |i, j| a_raw.get(i, j) / norms[j]);

        // One workspace per solve keeps the solver's per-iteration
        // vectors (x/z/gradients) in reused buffers instead of fresh
        // heap allocations every FISTA step.
        let mut ws = SolverWorkspace::new();
        // Warm-start seed: the previous window's raw solution restricted
        // to this group's candidates. Both solver branches work in the
        // same coordinate space (one unknown per candidate column), so
        // the restriction is a plain gather.
        let mut warm_used = false;
        if let Some(field) = warm {
            let x0: Vec<f64> = candidates.iter().map(|&j| field[j]).collect();
            if x0.iter().any(|&v| v > 0.0) {
                ws.set_warm_start(&x0);
                warm_used = true;
            }
        }
        let recovery = if self.orthogonalize {
            let (q, y_prime) = if self.fused_factorization {
                // Fused Proposition 1: one SVD A = U Σ Vᵀ yields both
                // the orthonormal row basis Q = V_rᵀ and the
                // transformed observation y' = Q A† y = Σ_r⁻¹ U_rᵀ y
                // (V_rᵀ V Σ⁺ collapses to Σ_r⁻¹ on the kept columns).
                // No Gram–Schmidt pass, no second SVD for A†, no
                // r × pruned-N × m matmul for T.
                let svd = Svd::new(&a).map_err(|e| CoreError::Solver(e.to_string()))?;
                let sigma = svd.singular_values();
                // Rank cutoff at √ε·σ_max, NOT the pseudo-inverse's
                // 1e-10·σ_max: the SVD comes from the Gram
                // eigendecomposition, whose eigenvalues carry ~ε·λ_max
                // absolute error, so singular values below √ε·σ_max are
                // numerical noise. Dividing y' by a noise σ inflates
                // ‖Qᵀy'‖∞ — and with it the relative ℓ1 weight λ —
                // enough to shrink away genuinely weak APs.
                let tol = f64::EPSILON.sqrt() * sigma.first().copied().unwrap_or(0.0);
                let kept: Vec<usize> = (0..sigma.len()).filter(|&i| sigma[i] > tol).collect();
                let v = svd.v();
                let q = Matrix::from_fn(kept.len(), v.rows(), |r, c| v.get(c, kept[r]));
                let y_prime: Vec<f64> = kept
                    .iter()
                    .map(|&i| svd.u().col_dot(i, y) / sigma[i])
                    .collect();
                (q, y_prime)
            } else {
                // Unfused Proposition 1: Q = orth(Aᵀ)ᵀ, T = Q A†,
                // y' = T y — the historical route, kept as the bench
                // baseline for the fused factorization.
                let q_cols = orth(&a.transpose()); // pruned-N × r
                let q = q_cols.transpose(); // r × pruned-N
                let pinv = pseudo_inverse(&a).map_err(|e| CoreError::Solver(e.to_string()))?;
                let t = q.matmul(&pinv); // r × m
                let y_prime = t.matvec(y);
                (q, y_prime)
            };
            match self.accel_solver(true) {
                Some(s) => s.recover_with(&q, &y_prime, &mut ws)?,
                None => self.solver.recover_with(&q, &y_prime, &mut ws)?,
            }
        } else {
            match self.accel_solver(false) {
                Some(s) => s.recover_with(&a, y, &mut ws)?,
                None => self.solver.recover_with(&a, y, &mut ws)?,
            }
        };

        // Raw solver field on the full grid — the warm-start seed for
        // the next window's solves (pre-debias so reseeding stays in
        // solver coordinates).
        let mut raw = vec![0.0; n];
        for (jc, &j) in candidates.iter().enumerate() {
            raw[j] = recovery.solution[jc];
        }

        // Un-scale the pruned solution.
        let mut pruned: Vec<f64> = recovery
            .solution
            .iter()
            .zip(&norms)
            .map(|(s, nm)| s / nm)
            .collect();

        // Debias by matched-filter rescoring over *all* candidate
        // columns. ℓ1 shrinkage both spreads mass over near-collinear
        // columns and — on nearly flat signatures from short colinear
        // stretches — can drop the true column from its support
        // entirely, so restricting the rescoring to the ℓ1 support is
        // not safe. Since each per-AP indicator is exactly 1-sparse,
        // every candidate column can be scored by how well it *alone*
        // explains `y` (`c_j = ⟨a_j, y⟩ / ‖a_j‖²`, relative residual
        // `ρ_j`); the ℓ1 coefficients survive as a multiplicative soft
        // prior on the final weights. One caveat the rescoring cannot
        // fix: readings taken on a single straight line leave a mirror
        // ambiguity (columns reflected across the trajectory have
        // *identical* signatures) — the recovered θ is then bimodal and
        // the hypothesis-selection stage disambiguates using the rest
        // of the window (see `select`).
        let max_coef = pruned.iter().cloned().fold(0.0_f64, f64::max);
        {
            let ynorm = crowdwifi_linalg::vector::norm2(y).max(1e-12);
            let mut scored: Vec<(usize, f64, f64)> = Vec::with_capacity(pruned.len());
            // One residual buffer for the whole rescoring loop; the
            // column itself is read straight out of the matrix storage
            // (`col_sumsq`/`col_dot`/`col_iter`) instead of being
            // copied into a fresh `Vec` per candidate.
            let mut res: Vec<f64> = Vec::with_capacity(m);
            for j in 0..pruned.len() {
                let cc = a_raw.col_sumsq(j);
                if cc <= 0.0 {
                    continue;
                }
                let cj = (a_raw.col_dot(j, y) / cc).max(0.0);
                res.clear();
                res.extend(y.iter().zip(a_raw.col_iter(j)).map(|(yy, aa)| yy - cj * aa));
                let relres = crowdwifi_linalg::vector::norm2(&res) / ynorm;
                scored.push((j, cj, relres));
            }
            if !scored.is_empty() {
                let res_min = scored.iter().map(|s| s.2).fold(f64::INFINITY, f64::min);
                let scale = res_min.max(0.01);
                let l1_rel: Vec<f64> = pruned
                    .iter()
                    .map(|&p| if max_coef > 0.0 { p / max_coef } else { 0.0 })
                    .collect();
                for p in pruned.iter_mut() {
                    *p = 0.0;
                }
                for &(j, cj, relres) in &scored {
                    let w =
                        (-((relres * relres - res_min * res_min) / (2.0 * scale * scale))).exp();
                    pruned[j] = cj * w * (0.5 + 0.5 * l1_rel[j]);
                }
            }
        }

        // Scatter back to the full grid.
        let mut theta = vec![0.0; n];
        for (jc, &j) in candidates.iter().enumerate() {
            theta[j] = pruned[jc];
        }
        Ok(GroupSolve {
            theta,
            raw,
            iterations: recovery.iterations,
            converged: recovery.converged,
            screened_cols: recovery.screened_cols,
            iterations_saved: recovery.iterations_saved,
            warm_used,
        })
    }
}

/// Result of one pruned group solve: the scattered indicator plus the
/// solver's convergence and acceleration diagnostics (fed into
/// [`SensingStats`]).
struct GroupSolve {
    theta: Vec<f64>,
    /// Raw (pre-debias) solver solution scattered to the full grid.
    raw: Vec<f64>,
    iterations: usize,
    converged: bool,
    screened_cols: usize,
    iterations_saved: usize,
    warm_used: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_geo::Rect;

    fn grid_100() -> Grid {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
        Grid::new(area, 10.0).unwrap()
    }

    fn engine() -> CsRecovery {
        CsRecovery::new(PathLossModel::uci_campus(), 100.0, -95.0)
    }

    /// Fading-free readings from an AP at `ap` heard at `positions`.
    fn clean_rss(ap: Point, positions: &[Point]) -> Vec<f64> {
        let model = PathLossModel::uci_campus();
        positions
            .iter()
            .map(|p| model.mean_rss(p.distance(ap)))
            .collect()
    }

    /// An L-shaped drive: east along y = 0, then north along x = 75.
    /// A turning route is essential — readings on one straight line
    /// leave a mirror ambiguity about which side of the road the AP is
    /// on (see the module docs).
    fn l_route() -> Vec<Point> {
        let mut route: Vec<Point> = (0..6).map(|i| Point::new(15.0 * i as f64, 0.0)).collect();
        route.extend((1..5).map(|i| Point::new(75.0, 15.0 * i as f64)));
        route
    }

    #[test]
    fn recovers_ap_on_grid_point() {
        let grid = grid_100();
        let ap_idx = grid.nearest_index(Point::new(45.0, 45.0));
        let ap = grid.point(ap_idx);
        let positions = l_route();
        let rss = clean_rss(ap, &positions);
        let theta = engine().recover_single_ap(&grid, &positions, &rss).unwrap();
        // Dominant coefficient on the true grid point.
        let best = (0..theta.len())
            .max_by(|&a, &b| theta[a].partial_cmp(&theta[b]).unwrap())
            .unwrap();
        assert_eq!(best, ap_idx, "peak at {} expected {}", best, ap_idx);
    }

    #[test]
    fn off_grid_ap_recovers_to_neighborhood() {
        let grid = grid_100();
        let ap = Point::new(43.0, 47.0); // intentionally off-lattice
        let positions = l_route();
        let rss = clean_rss(ap, &positions);
        let theta = engine().recover_single_ap(&grid, &positions, &rss).unwrap();
        let best = (0..theta.len())
            .max_by(|&a, &b| theta[a].partial_cmp(&theta[b]).unwrap())
            .unwrap();
        assert!(
            grid.point(best).distance(ap) <= grid.cell_diagonal(),
            "peak {} is {:.1} m away",
            best,
            grid.point(best).distance(ap)
        );
    }

    #[test]
    fn pruning_returns_zero_for_inconsistent_hypothesis() {
        let grid = grid_100();
        // Two readings 300 m apart with a 100 m radio range: no grid
        // point is in range of both.
        let engine = CsRecovery::new(PathLossModel::uci_campus(), 100.0, -95.0);
        let positions = [Point::new(-150.0, 50.0), Point::new(250.0, 50.0)];
        let theta = engine
            .recover_single_ap(&grid, &positions, &[-60.0, -60.0])
            .unwrap();
        assert!(theta.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn orthogonalization_ablation_still_runs() {
        let grid = grid_100();
        let ap = grid.point(grid.nearest_index(Point::new(55.0, 55.0)));
        let positions: Vec<Point> = (0..6)
            .map(|i| Point::new(20.0 + 12.0 * i as f64, 40.0))
            .collect();
        let rss = clean_rss(ap, &positions);
        let plain = engine()
            .without_orthogonalization()
            .recover_single_ap(&grid, &positions, &rss)
            .unwrap();
        assert!(plain.iter().any(|&x| x > 0.0));
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let grid = grid_100();
        assert!(matches!(
            engine().recover_single_ap(&grid, &[Point::new(0.0, 0.0)], &[]),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            engine().recover_single_ap(&grid, &[], &[]),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn workspace_recovery_matches_direct_path() {
        let grid = grid_100();
        let ap = grid.point(grid.nearest_index(Point::new(45.0, 45.0)));
        let route = l_route();
        let readings: Vec<crowdwifi_channel::RssReading> = route
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                crowdwifi_channel::RssReading::new(
                    p,
                    PathLossModel::uci_campus().mean_rss(p.distance(ap)),
                    i as f64,
                )
            })
            .collect();
        let engine = engine();
        let sensing = engine.prepare_window(&grid, &readings);
        // Whole window, a prefix group and a strided group: each must be
        // bit-identical to the direct per-subset recovery.
        let groups: [Vec<usize>; 3] = [
            (0..readings.len()).collect(),
            (0..4).collect(),
            (0..readings.len()).step_by(2).collect(),
        ];
        for idx in &groups {
            let positions: Vec<Point> = idx.iter().map(|&i| readings[i].position).collect();
            let rss: Vec<f64> = idx.iter().map(|&i| readings[i].rss_dbm).collect();
            let direct = engine.recover_single_ap(&grid, &positions, &rss).unwrap();
            let shared = engine.recover_group(&sensing, idx).unwrap();
            assert_eq!(direct, *shared, "subset {idx:?} diverged");
        }
        assert_eq!(sensing.cached_groups(), groups.len());
        // A repeated query is served from the memo (same Arc).
        let again = engine.recover_group(&sensing, &groups[1]).unwrap();
        let first = engine.recover_group(&sensing, &groups[1]).unwrap();
        assert!(Arc::ptr_eq(&again, &first));
        assert_eq!(sensing.cached_groups(), groups.len());
    }

    #[test]
    fn workspace_rejects_bad_indices() {
        let grid = grid_100();
        let readings = vec![crowdwifi_channel::RssReading::new(
            Point::new(10.0, 10.0),
            -60.0,
            0.0,
        )];
        let engine = engine();
        let sensing = engine.prepare_window(&grid, &readings);
        assert!(engine.recover_group(&sensing, &[]).is_err());
        assert!(engine.recover_group(&sensing, &[5]).is_err());
    }

    /// Fused (one-SVD) and unfused (Gram–Schmidt + pseudo-inverse)
    /// factorizations build different orthonormal bases of the same row
    /// space; the ℓ1 program is invariant under that rotation, so the
    /// recovered peak and support must agree.
    #[test]
    fn fused_factorization_preserves_support() {
        let grid = grid_100();
        let ap_idx = grid.nearest_index(Point::new(45.0, 45.0));
        let ap = grid.point(ap_idx);
        let positions = l_route();
        let rss = clean_rss(ap, &positions);
        let fused = engine().recover_single_ap(&grid, &positions, &rss).unwrap();
        let unfused = engine()
            .with_fused_factorization(false)
            .recover_single_ap(&grid, &positions, &rss)
            .unwrap();
        let peak = |t: &[f64]| {
            (0..t.len())
                .max_by(|&a, &b| t[a].partial_cmp(&t[b]).unwrap())
                .unwrap()
        };
        assert_eq!(peak(&fused), ap_idx);
        assert_eq!(peak(&unfused), ap_idx);
        let support = |t: &[f64]| {
            let m = t.iter().cloned().fold(0.0_f64, f64::max);
            (0..t.len()).filter(|&j| t[j] > 0.3 * m).collect::<Vec<_>>()
        };
        assert_eq!(support(&fused), support(&unfused));
        // And under the full acceleration stack, too.
        let fused_accel = engine()
            .with_accel(SolverAccel::enabled())
            .recover_single_ap(&grid, &positions, &rss)
            .unwrap();
        assert_eq!(support(&fused_accel), support(&fused));
    }

    #[test]
    fn recover_groups_aligns_and_dedups() {
        let grid = grid_100();
        let ap = grid.point(grid.nearest_index(Point::new(45.0, 45.0)));
        let route = l_route();
        let readings: Vec<crowdwifi_channel::RssReading> = route
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                crowdwifi_channel::RssReading::new(
                    p,
                    PathLossModel::uci_campus().mean_rss(p.distance(ap)),
                    i as f64,
                )
            })
            .collect();
        let engine = engine();
        let sensing = engine.prepare_window(&grid, &readings);
        let g_all: Vec<usize> = (0..readings.len()).collect();
        let g_prefix: Vec<usize> = (0..4).collect();
        // The duplicate of `g_all` must be served from the batch dedup
        // (same Arc), and each slot must match the per-group path.
        let batch = vec![g_all.clone(), g_prefix.clone(), g_all.clone()];
        let thetas = engine.recover_groups(&sensing, &batch).unwrap();
        assert_eq!(thetas.len(), 3);
        assert!(Arc::ptr_eq(&thetas[0], &thetas[2]));
        assert_eq!(sensing.cached_groups(), 2);
        for (idx, theta) in batch.iter().zip(&thetas) {
            let single = engine.recover_group(&sensing, idx).unwrap();
            assert_eq!(**theta, *single, "group {idx:?} diverged");
        }
        // Error propagation: one bad group fails the batch.
        assert!(engine.recover_groups(&sensing, &[vec![99]]).is_err());
    }

    #[test]
    fn accelerated_solves_preserve_the_recovered_peak() {
        let grid = grid_100();
        let ap_idx = grid.nearest_index(Point::new(45.0, 45.0));
        let ap = grid.point(ap_idx);
        let positions = l_route();
        let rss = clean_rss(ap, &positions);
        let baseline = engine().recover_single_ap(&grid, &positions, &rss).unwrap();
        let accel = engine()
            .with_accel(SolverAccel::enabled())
            .recover_single_ap(&grid, &positions, &rss)
            .unwrap();
        let peak = |t: &[f64]| {
            (0..t.len())
                .max_by(|&a, &b| t[a].partial_cmp(&t[b]).unwrap())
                .unwrap()
        };
        assert_eq!(peak(&baseline), ap_idx);
        assert_eq!(peak(&accel), ap_idx);
        // Same support above a loose threshold — screening and the gap
        // stop must not move mass between grid cells.
        let support = |t: &[f64]| {
            let m = t.iter().cloned().fold(0.0_f64, f64::max);
            (0..t.len()).filter(|&j| t[j] > 0.3 * m).collect::<Vec<_>>()
        };
        assert_eq!(support(&baseline), support(&accel));
    }

    #[test]
    fn warm_cache_absorbs_and_projects() {
        let grid = grid_100();
        let ap = grid.point(grid.nearest_index(Point::new(45.0, 45.0)));
        let route = l_route();
        let readings: Vec<crowdwifi_channel::RssReading> = route
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                crowdwifi_channel::RssReading::new(
                    p,
                    PathLossModel::uci_campus().mean_rss(p.distance(ap)),
                    i as f64,
                )
            })
            .collect();
        let engine = engine().with_accel(SolverAccel::enabled());
        let mut warm = WarmStartCache::new();
        assert!(warm.is_empty());
        assert!(warm.project(&grid).is_none());

        // Window 1: cold solves fill the memo; absorb snapshots it.
        let sensing = engine.prepare_window_seeded(&grid, &readings, &warm);
        assert!(!sensing.is_seeded());
        let idx: Vec<usize> = (0..readings.len()).collect();
        engine.recover_group(&sensing, &idx).unwrap();
        warm.absorb(&grid, &sensing);
        assert!(!warm.is_empty());
        let field = warm.project(&grid).expect("projection lands on grid");
        assert_eq!(field.len(), grid.len());
        assert!(field.iter().any(|&v| v > 0.0));

        // Window 2 (same grid here): the seeded solve reports warm use
        // and reaches the same answer as window 1's cold solve.
        let seeded = engine.prepare_window_seeded(&grid, &readings, &warm);
        assert!(seeded.is_seeded());
        let warm_theta = engine.recover_group(&seeded, &idx).unwrap();
        let cold_theta = engine.recover_group(&sensing, &idx).unwrap();
        let stats = seeded.stats();
        assert_eq!(stats.warm_seeded, 1);
        let peak = |t: &[f64]| {
            (0..t.len())
                .max_by(|&a, &b| t[a].partial_cmp(&t[b]).unwrap())
                .unwrap()
        };
        assert_eq!(peak(&warm_theta), peak(&cold_theta));
        // A window that solved nothing clears the chain.
        let empty = engine.prepare_window(&grid, &readings);
        warm.absorb(&grid, &empty);
        assert!(warm.is_empty());
    }

    #[test]
    fn stats_merge_sums_every_field() {
        let a = SensingStats {
            lookups: 1,
            hits: 2,
            solves: 3,
            solver_iterations: 4,
            unconverged: 5,
            screened_cols: 6,
            iterations_saved: 7,
            warm_seeded: 8,
        };
        let mut total = a;
        total.merge(&a);
        assert_eq!(
            total,
            SensingStats {
                lookups: 2,
                hits: 4,
                solves: 6,
                solver_iterations: 8,
                unconverged: 10,
                screened_cols: 12,
                iterations_saved: 14,
                warm_seeded: 16,
            }
        );
    }

    #[test]
    fn single_reading_recovery_is_well_defined() {
        let grid = grid_100();
        let ap = grid.point(grid.nearest_index(Point::new(45.0, 45.0)));
        let p = [Point::new(40.0, 40.0)];
        let rss = clean_rss(ap, &p);
        let theta = engine().recover_single_ap(&grid, &p, &rss).unwrap();
        // With one measurement the solution is underdetermined but must
        // be finite and non-negative.
        assert!(theta.iter().all(|&x| x.is_finite() && x >= 0.0));
        assert!(theta.iter().any(|&x| x > 0.0));
    }
}
