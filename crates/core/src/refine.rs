//! Global BIC refinement of the consolidated AP set.
//!
//! Credit-based consolidation (§4.3.6) filters locally: it keeps any
//! location that won at least two rounds. Two failure modes survive it:
//!
//! * **mirror ghosts** — a window whose readings for one AP are colinear
//!   cannot tell which side of the road the AP is on; the wrong side
//!   wins some rounds and accumulates credit alongside the right side,
//! * **weak APs** — an AP skirted at long range may never win two
//!   rounds, so its (correct) single-credit estimate is discarded.
//!
//! Both are resolved by the *global* data: a ghost adds nothing to the
//! likelihood of the full drive (readings from other road legs never
//! corroborate it), while a weak AP's estimate is the only explanation
//! for the readings collected near it. This module greedily builds the
//! constellation that maximizes the whole-drive GMM likelihood with the
//! BIC complexity penalty — the same objective the per-round selection
//! uses, lifted to the entire reading set.

// Index-based loops below mirror the textbook algorithms; iterator
// rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::consolidate::ApEstimate;
use crowdwifi_channel::bic::{bic, free_params_for_ap_count};
use crowdwifi_channel::{GmmModel, RssReading};
use crowdwifi_geo::Point;

/// Greedy forward selection of candidate estimates by global BIC.
///
/// Starts from the empty constellation and repeatedly adds the candidate
/// that improves the BIC the most, stopping when no addition improves
/// it. Returns the selected estimates (credits preserved), in selection
/// order.
pub fn global_bic_selection(
    readings: &[RssReading],
    candidates: &[ApEstimate],
    gmm: &GmmModel,
) -> Vec<ApEstimate> {
    if readings.is_empty() || candidates.is_empty() {
        return Vec::new();
    }
    let data: Vec<(Point, f64)> = readings.iter().map(|r| (r.position, r.rss_dbm)).collect();
    let m = readings.len();

    // The search below scores hundreds of subsets of one fixed candidate
    // pool; the per-(reading, candidate) transcendentals are hoisted into
    // a cache once, which is bit-identical to direct scoring (see
    // [`crowdwifi_channel::gmm::HardFitCache`]).
    let pool: Vec<Point> = candidates.iter().map(|e| e.position).collect();
    let cache = gmm.hard_fit_cache(&data, &pool);
    let score_of = |sel: &[usize]| -> f64 {
        let ll = cache.hard_log_likelihood(sel);
        if ll.is_finite() {
            bic(ll, free_params_for_ap_count(sel.len()), m)
        } else {
            f64::NEG_INFINITY
        }
    };

    let mut chosen: Vec<usize> = Vec::new();
    let mut remaining: Vec<usize> = (0..candidates.len()).collect();
    let mut current_bic = f64::NEG_INFINITY;

    // Alternate greedy additions with swap/removal local search. Plain
    // greedy is order-sensitive: with few APs selected, a mirror ghost
    // can outscore its true twin and then block it forever; the swap
    // phase repairs such choices once the rest of the constellation is
    // in place.
    for _pass in 0..6 {
        let mut changed = false;

        // Additions.
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (i, &cand) in remaining.iter().enumerate() {
                let mut sel = chosen.clone();
                sel.push(cand);
                let score = score_of(&sel);
                if score.is_finite() && best.is_none_or(|(_, b)| score > b) {
                    best = Some((i, score));
                }
            }
            match best {
                Some((i, score)) if score > current_bic => {
                    current_bic = score;
                    chosen.push(remaining.swap_remove(i));
                    changed = true;
                }
                _ => break,
            }
        }

        // Swaps: replace one selected estimate with one candidate.
        'swap: for i in 0..chosen.len() {
            for j in 0..remaining.len() {
                let mut sel = chosen.clone();
                sel[i] = remaining[j];
                let score = score_of(&sel);
                if score > current_bic + 1e-9 {
                    std::mem::swap(&mut chosen[i], &mut remaining[j]);
                    current_bic = score;
                    changed = true;
                    continue 'swap;
                }
            }
        }

        // Removals.
        let mut i = 0;
        while i < chosen.len() {
            let mut sel = chosen.clone();
            sel.remove(i);
            let score = if sel.is_empty() {
                f64::NEG_INFINITY
            } else {
                score_of(&sel)
            };
            if score > current_bic + 1e-9 {
                remaining.push(chosen.remove(i));
                current_bic = score;
                changed = true;
            } else {
                i += 1;
            }
        }

        if !changed {
            break;
        }
    }
    chosen.into_iter().map(|i| candidates[i]).collect()
}

/// Polishes selected AP positions with whole-drive EM passes: readings
/// are attributed to their nearest selected AP, each AP is re-recovered
/// from *all* its readings (not just one window's worth) on a grid over
/// the full driving area, and positions update to the strongest
/// recovered mode near the previous position.
///
/// Returns the polished estimates; APs whose groups are too small to
/// re-recover keep their previous positions.
pub fn polish_positions(
    readings: &[RssReading],
    selected: &[ApEstimate],
    recovery: &crate::recovery::CsRecovery,
    lattice: f64,
    passes: usize,
) -> Vec<ApEstimate> {
    if readings.is_empty() || selected.is_empty() {
        return selected.to_vec();
    }
    let mut aps: Vec<ApEstimate> = selected.to_vec();
    for _ in 0..passes {
        // Attribute each reading to the nearest current AP.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); aps.len()];
        for (i, r) in readings.iter().enumerate() {
            let nearest = aps
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    r.position
                        .distance(a.position)
                        .partial_cmp(&r.position.distance(b.position))
                        .expect("finite distances")
                })
                .map(|(j, _)| j)
                .expect("non-empty constellation");
            groups[nearest].push(i);
        }
        let mut moved = false;
        for (j, group) in groups.iter().enumerate() {
            if group.len() < 3 {
                continue;
            }
            let positions: Vec<Point> = group.iter().map(|&i| readings[i].position).collect();
            let rss: Vec<f64> = group.iter().map(|&i| readings[i].rss_dbm).collect();
            let Ok(grid) = crowdwifi_geo::Grid::from_reference_points(
                &positions,
                recovery.radio_range(),
                lattice,
            ) else {
                continue;
            };
            let Ok(theta) = recovery.recover_single_ap(&grid, &positions, &rss) else {
                continue;
            };
            let modes = crate::centroid::candidate_modes(&theta, &grid, 0.3, 2.0 * lattice, 3);
            // Take the mode nearest the current estimate (the global
            // selection already chose the side; don't flip it).
            if let Some(best) = modes.iter().min_by(|a, b| {
                a.position
                    .distance(aps[j].position)
                    .partial_cmp(&b.position.distance(aps[j].position))
                    .expect("finite distances")
            }) {
                if best.position.distance(aps[j].position) > 1e-9 {
                    moved = true;
                }
                aps[j].position = best.position;
            }
        }
        if !moved {
            break;
        }
    }
    aps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_channel::PathLossModel;

    fn gmm() -> GmmModel {
        GmmModel::new(PathLossModel::uci_campus(), 0.05).unwrap()
    }

    /// Readings generated fading-free from `aps` (nearest AP heard).
    fn readings_from(aps: &[Point], positions: &[Point]) -> Vec<RssReading> {
        let model = PathLossModel::uci_campus();
        positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let nearest = aps
                    .iter()
                    .min_by(|a, b| p.distance(**a).partial_cmp(&p.distance(**b)).unwrap())
                    .unwrap();
                RssReading::new(p, model.mean_rss(p.distance(*nearest)), i as f64)
            })
            .collect()
    }

    fn est(x: f64, y: f64, credit: f64) -> ApEstimate {
        ApEstimate {
            position: Point::new(x, y),
            credit,
        }
    }

    #[test]
    fn keeps_true_ap_and_drops_mirror_ghost() {
        let truth = Point::new(50.0, 30.0);
        // Route passes on y = 0 (ambiguous leg) and on y = 60 (which
        // refutes the ghost at y = -30).
        let mut positions: Vec<Point> = (0..10).map(|i| Point::new(10.0 * i as f64, 0.0)).collect();
        positions.extend((0..10).map(|i| Point::new(10.0 * i as f64, 60.0)));
        let readings = readings_from(&[truth], &positions);
        let candidates = [est(50.0, 30.0, 3.0), est(50.0, -30.0, 3.0)];
        let selected = global_bic_selection(&readings, &candidates, &gmm());
        assert_eq!(selected.len(), 1, "got {selected:?}");
        assert!(selected[0].position.y > 0.0, "ghost won: {selected:?}");
    }

    #[test]
    fn rescues_low_credit_true_ap() {
        let ap1 = Point::new(20.0, 30.0);
        let ap2 = Point::new(180.0, 30.0);
        let positions: Vec<Point> = (0..20).map(|i| Point::new(10.0 * i as f64, 0.0)).collect();
        let readings = readings_from(&[ap1, ap2], &positions);
        // ap2's estimate has only one credit (would be filtered by the
        // credit rule) but is needed to explain the right half of the
        // drive.
        let candidates = [est(20.0, 30.0, 5.0), est(180.0, 30.0, 1.0)];
        let selected = global_bic_selection(&readings, &candidates, &gmm());
        assert_eq!(selected.len(), 2, "got {selected:?}");
    }

    #[test]
    fn rejects_redundant_duplicate() {
        let truth = Point::new(50.0, 30.0);
        let positions: Vec<Point> = (0..12).map(|i| Point::new(8.0 * i as f64, 5.0)).collect();
        let readings = readings_from(&[truth], &positions);
        let candidates = [est(50.0, 30.0, 4.0), est(52.0, 32.0, 2.0)];
        let selected = global_bic_selection(&readings, &candidates, &gmm());
        assert_eq!(selected.len(), 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(global_bic_selection(&[], &[est(0.0, 0.0, 1.0)], &gmm()).is_empty());
        assert!(global_bic_selection(
            &readings_from(&[Point::new(0.0, 0.0)], &[Point::new(1.0, 1.0)]),
            &[],
            &gmm()
        )
        .is_empty());
    }
}
