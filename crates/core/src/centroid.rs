//! Centroid processing of dominant recovery coefficients (§4.3.4).
//!
//! The recovered `θ̂` is rarely an exact 1-sparse indicator; mass smears
//! over the grid points neighboring the true AP. Eq. (3) compensates by
//! taking the coefficient-weighted centroid of the dominant entries.

use crowdwifi_geo::{point::weighted_centroid, Grid, Point};

/// Result of centroid processing for one AP hypothesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CentroidEstimate {
    /// The Eq. (3) location estimate.
    pub position: Point,
    /// Total coefficient mass of the dominant set (Σ θ̂_k over S_k) — a
    /// crude confidence signal.
    pub mass: f64,
}

/// Applies Eq. (3): selects coefficients `θ̂(n) ≥ rel_threshold · max θ̂`
/// and returns their weighted centroid.
///
/// Returns `None` when `θ̂` has no positive coefficient (failed or
/// inconsistent recovery).
///
/// # Panics
///
/// Panics if `theta.len() != grid.len()` or `rel_threshold ∉ (0, 1]`.
///
/// # Example
///
/// ```
/// use crowdwifi_core::centroid::centroid_of_dominant;
/// use crowdwifi_geo::{Grid, Point, Rect};
///
/// let grid = Grid::new(
///     Rect::new(Point::new(0.0, 0.0), Point::new(20.0, 10.0)).unwrap(),
///     10.0,
/// ).unwrap();
/// let mut theta = vec![0.0; grid.len()];
/// theta[0] = 1.0;
/// theta[1] = 1.0;
/// let est = centroid_of_dominant(&theta, &grid, 0.5).unwrap();
/// // Equal mass on both cells: centroid midway.
/// assert_eq!(est.position, Point::new(10.0, 5.0));
/// ```
pub fn centroid_of_dominant(
    theta: &[f64],
    grid: &Grid,
    rel_threshold: f64,
) -> Option<CentroidEstimate> {
    assert_eq!(theta.len(), grid.len(), "theta/grid size mismatch");
    assert!(
        rel_threshold > 0.0 && rel_threshold <= 1.0,
        "rel_threshold must be in (0, 1]"
    );
    let max = theta.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return None;
    }
    let zeta = rel_threshold * max;
    let mut points = Vec::new();
    let mut weights = Vec::new();
    for (n, &coef) in theta.iter().enumerate() {
        if coef >= zeta {
            points.push(grid.point(n));
            weights.push(coef);
        }
    }
    let position = weighted_centroid(&points, &weights)?;
    Some(CentroidEstimate {
        position,
        mass: weights.iter().sum(),
    })
}

/// Splits the dominant coefficients into spatially connected modes and
/// returns each mode's weighted centroid, strongest first (by mass).
///
/// A recovery from (nearly) colinear readings is bimodal: the true AP
/// position and its mirror across the trajectory carry similar mass.
/// Collapsing them into one centroid (as plain [`centroid_of_dominant`]
/// would) lands uselessly between the modes; returning both lets the
/// BIC/likelihood stage pick the side that is consistent with the rest
/// of the window.
///
/// Two dominant grid points belong to the same mode when they are within
/// `link_radius` of each other (transitively). Returns at most
/// `max_modes` modes.
///
/// # Panics
///
/// Panics under the same conditions as [`centroid_of_dominant`].
pub fn candidate_modes(
    theta: &[f64],
    grid: &Grid,
    rel_threshold: f64,
    link_radius: f64,
    max_modes: usize,
) -> Vec<CentroidEstimate> {
    assert_eq!(theta.len(), grid.len(), "theta/grid size mismatch");
    assert!(
        rel_threshold > 0.0 && rel_threshold <= 1.0,
        "rel_threshold must be in (0, 1]"
    );
    let max = theta.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 || max_modes == 0 {
        return Vec::new();
    }
    let zeta = rel_threshold * max;
    let dominant: Vec<usize> = (0..theta.len()).filter(|&n| theta[n] >= zeta).collect();
    // Hoist the dominant positions out of the O(d²) linking loop below
    // (grid.point recomputes coordinates from the index on every call).
    let dom_pts: Vec<Point> = dominant.iter().map(|&n| grid.point(n)).collect();

    // Union-find over dominant points linked within `link_radius`.
    let mut parent: Vec<usize> = (0..dominant.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..dominant.len() {
        for j in (i + 1)..dominant.len() {
            if dom_pts[i].distance(dom_pts[j]) <= link_radius {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    // Weighted centroid per component (BTreeMap: deterministic order so
    // equal-mass modes never reorder between runs).
    let mut by_root: std::collections::BTreeMap<usize, (Vec<Point>, Vec<f64>)> =
        std::collections::BTreeMap::new();
    for (i, &n) in dominant.iter().enumerate() {
        let root = find(&mut parent, i);
        let entry = by_root.entry(root).or_default();
        entry.0.push(dom_pts[i]);
        entry.1.push(theta[n]);
    }
    let mut modes: Vec<CentroidEstimate> = by_root
        .values()
        .filter_map(|(pts, ws)| {
            weighted_centroid(pts, ws).map(|position| CentroidEstimate {
                position,
                mass: ws.iter().sum(),
            })
        })
        .collect();
    modes.sort_by(|a, b| {
        b.mass
            .partial_cmp(&a.mass)
            .expect("finite masses")
            .then(a.position.x.partial_cmp(&b.position.x).expect("finite x"))
            .then(a.position.y.partial_cmp(&b.position.y).expect("finite y"))
    });
    modes.truncate(max_modes);
    modes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_geo::Rect;

    fn grid() -> Grid {
        Grid::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(40.0, 40.0)).unwrap(),
            10.0,
        )
        .unwrap()
    }

    #[test]
    fn single_spike_maps_to_its_grid_point() {
        let g = grid();
        let mut theta = vec![0.0; g.len()];
        theta[5] = 2.0;
        let est = centroid_of_dominant(&theta, &g, 0.3).unwrap();
        assert_eq!(est.position, g.point(5));
        assert_eq!(est.mass, 2.0);
    }

    #[test]
    fn threshold_excludes_weak_coefficients() {
        let g = grid();
        let mut theta = vec![0.0; g.len()];
        theta[0] = 1.0;
        theta[15] = 0.1; // below 0.3 × max
        let est = centroid_of_dominant(&theta, &g, 0.3).unwrap();
        assert_eq!(est.position, g.point(0));
    }

    #[test]
    fn weighting_pulls_centroid() {
        let g = grid();
        let mut theta = vec![0.0; g.len()];
        theta[0] = 3.0; // (5, 5)
        theta[1] = 1.0; // (15, 5)
        let est = centroid_of_dominant(&theta, &g, 0.1).unwrap();
        assert!((est.position.x - 7.5).abs() < 1e-12);
        assert!((est.position.y - 5.0).abs() < 1e-12);
    }

    #[test]
    fn all_zero_theta_yields_none() {
        let g = grid();
        assert!(centroid_of_dominant(&vec![0.0; g.len()], &g, 0.3).is_none());
    }

    #[test]
    #[should_panic(expected = "rel_threshold")]
    fn bad_threshold_panics() {
        let g = grid();
        centroid_of_dominant(&vec![0.0; g.len()], &g, 0.0);
    }

    #[test]
    fn modes_separate_bimodal_mass() {
        let g = grid(); // 4×4 cells, 10 m lattice, centers (5,5)..(35,35)
        let mut theta = vec![0.0; g.len()];
        // Mode A: two adjacent cells bottom-left; Mode B: one cell top-right.
        theta[0] = 1.0; // (5, 5)
        theta[1] = 0.8; // (15, 5)
        theta[15] = 0.9; // (35, 35)
        let modes = candidate_modes(&theta, &g, 0.3, 12.0, 3);
        assert_eq!(modes.len(), 2);
        // Strongest mode first (mass 1.8 > 0.9).
        assert!((modes[0].mass - 1.8).abs() < 1e-12);
        assert_eq!(modes[1].position, g.point(15));
        // Plain centroid would land between the modes.
        let collapsed = centroid_of_dominant(&theta, &g, 0.3).unwrap();
        assert!(collapsed.position.distance(modes[0].position) > 5.0);
    }

    #[test]
    fn modes_respect_max_cap_and_empty_theta() {
        let g = grid();
        let mut theta = vec![0.0; g.len()];
        theta[0] = 1.0;
        theta[5] = 1.0;
        theta[15] = 1.0;
        let modes = candidate_modes(&theta, &g, 0.3, 5.0, 2);
        assert_eq!(modes.len(), 2);
        assert!(candidate_modes(&vec![0.0; g.len()], &g, 0.3, 5.0, 3).is_empty());
    }
}
