//! The paper's counting- and localization-error metrics (§6).
//!
//! With `k` actual and `k̂` estimated APs and `k_min = min(k, k̂)`:
//!
//! * counting error = `|k̂ − k| / k`,
//! * localization error = `(Σ over matched pairs ‖aᵢ − âᵢ‖) / (k_min · ℓ)`
//!   where `ℓ` is the lattice length — below 1.0 (100 %) means estimates
//!   land within one grid cell of the truth.
//!
//! Estimated APs are matched to actual APs greedily by globally nearest
//! pair (the paper does not specify its matching; greedy is within a
//! factor-2 of optimal assignment and is what the error magnitudes in
//! the paper are consistent with).

use crowdwifi_geo::Point;

/// Counting error `|k̂ − k| / k`.
///
/// # Panics
///
/// Panics if `actual == 0` (the metric is undefined with no real APs).
pub fn counting_error(actual: usize, estimated: usize) -> f64 {
    assert!(actual > 0, "counting error undefined for zero actual APs");
    (estimated as f64 - actual as f64).abs() / actual as f64
}

/// Greedy globally-nearest matching between actual and estimated
/// positions; returns `min(len, len)` index pairs with their distances.
pub fn greedy_match(actual: &[Point], estimated: &[Point]) -> Vec<(usize, usize, f64)> {
    let mut pairs = Vec::new();
    let mut used_a = vec![false; actual.len()];
    let mut used_e = vec![false; estimated.len()];
    let target = actual.len().min(estimated.len());
    while pairs.len() < target {
        let mut best: Option<(usize, usize, f64)> = None;
        for (i, a) in actual.iter().enumerate() {
            if used_a[i] {
                continue;
            }
            for (j, e) in estimated.iter().enumerate() {
                if used_e[j] {
                    continue;
                }
                let d = a.distance(*e);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let (i, j, d) = best.expect("target bounded by both lengths");
        used_a[i] = true;
        used_e[j] = true;
        pairs.push((i, j, d));
    }
    pairs
}

/// The paper's normalized localization error. Returns `None` when either
/// set is empty (no pairs to evaluate).
///
/// # Panics
///
/// Panics if `lattice` is not positive.
pub fn localization_error(actual: &[Point], estimated: &[Point], lattice: f64) -> Option<f64> {
    assert!(lattice > 0.0, "lattice must be positive");
    let pairs = greedy_match(actual, estimated);
    if pairs.is_empty() {
        return None;
    }
    let total: f64 = pairs.iter().map(|&(_, _, d)| d).sum();
    Some(total / (pairs.len() as f64 * lattice))
}

/// Mean matched distance in meters (the "average estimation error" the
/// paper quotes for Figs. 5 and 9). `None` when either set is empty.
pub fn mean_distance_error(actual: &[Point], estimated: &[Point]) -> Option<f64> {
    let pairs = greedy_match(actual, estimated);
    if pairs.is_empty() {
        return None;
    }
    Some(pairs.iter().map(|&(_, _, d)| d).sum::<f64>() / pairs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_error_values() {
        assert_eq!(counting_error(8, 8), 0.0);
        assert_eq!(counting_error(8, 6), 0.25);
        assert_eq!(counting_error(8, 10), 0.25);
        assert_eq!(counting_error(10, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn counting_error_zero_actual_panics() {
        counting_error(0, 1);
    }

    #[test]
    fn greedy_match_pairs_nearest_first() {
        let actual = [Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let estimated = [Point::new(9.0, 0.0), Point::new(1.0, 0.0)];
        let pairs = greedy_match(&actual, &estimated);
        assert_eq!(pairs.len(), 2);
        // Each actual matched to its 1-meter neighbor.
        for &(i, j, d) in &pairs {
            assert!((d - 1.0).abs() < 1e-12, "pair ({i},{j}) at distance {d}");
        }
    }

    #[test]
    fn greedy_match_handles_count_mismatch() {
        let actual = [Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        let estimated = [Point::new(1.0, 0.0)];
        let pairs = greedy_match(&actual, &estimated);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, 0);
    }

    #[test]
    fn localization_error_normalization() {
        let actual = [Point::new(0.0, 0.0)];
        let estimated = [Point::new(4.0, 0.0)];
        // 4 m error over an 8 m lattice: 0.5 (50 %).
        assert_eq!(localization_error(&actual, &estimated, 8.0), Some(0.5));
        assert_eq!(localization_error(&actual, &[], 8.0), None);
        assert_eq!(localization_error(&[], &estimated, 8.0), None);
    }

    #[test]
    fn mean_distance_is_in_meters() {
        let actual = [Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
        let estimated = [Point::new(3.0, 0.0), Point::new(100.0, 4.0)];
        assert_eq!(mean_distance_error(&actual, &estimated), Some(3.5));
    }

    #[test]
    fn perfect_estimate_scores_zero() {
        let pts = [Point::new(5.0, 5.0), Point::new(20.0, 8.0)];
        assert_eq!(localization_error(&pts, &pts, 8.0), Some(0.0));
        assert_eq!(mean_distance_error(&pts, &pts), Some(0.0));
    }

    #[test]
    fn zero_estimated_aps_yield_full_counting_error_and_no_matches() {
        // A run that finds nothing: counting error saturates at 100%,
        // the match set is empty, and both distance metrics are
        // undefined rather than zero (nothing was localized).
        assert_eq!(counting_error(5, 0), 1.0);
        let actual = [Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        assert!(greedy_match(&actual, &[]).is_empty());
        assert!(greedy_match(&[], &actual).is_empty());
        assert_eq!(localization_error(&actual, &[], 8.0), None);
        assert_eq!(mean_distance_error(&actual, &[]), None);
    }

    #[test]
    fn duplicate_positions_match_one_to_one() {
        // Two estimates on the exact same spot (a consolidation near-
        // miss): each must consume a distinct actual AP, never the same
        // one twice, so the second duplicate pays its real distance.
        let actual = [Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let estimated = [Point::new(0.0, 0.0), Point::new(0.0, 0.0)];
        let pairs = greedy_match(&actual, &estimated);
        assert_eq!(pairs.len(), 2);
        let actuals: std::collections::BTreeSet<usize> = pairs.iter().map(|&(i, _, _)| i).collect();
        let estimates: std::collections::BTreeSet<usize> =
            pairs.iter().map(|&(_, j, _)| j).collect();
        assert_eq!(actuals.len(), 2, "an actual AP was matched twice");
        assert_eq!(estimates.len(), 2, "an estimate was matched twice");
        let mut dists: Vec<f64> = pairs.iter().map(|&(_, _, d)| d).collect();
        dists.sort_by(f64::total_cmp);
        assert_eq!(dists, vec![0.0, 10.0]);
        assert_eq!(mean_distance_error(&actual, &estimated), Some(5.0));
        // Duplicate *actual* APs (co-located radios) behave the same.
        let co_located = [Point::new(3.0, 0.0), Point::new(3.0, 0.0)];
        let est = [Point::new(3.0, 0.0)];
        let pairs = greedy_match(&co_located, &est);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].2, 0.0);
    }

    #[test]
    fn overestimated_k_matches_min_and_scores_symmetric_counting() {
        // k̂ > k: every actual AP gets exactly one match, surplus
        // estimates are unmatched, and |k̂−k|/k mirrors the
        // underestimate of the same magnitude.
        let actual = [Point::new(0.0, 0.0)];
        let estimated = [
            Point::new(2.0, 0.0),
            Point::new(40.0, 0.0),
            Point::new(80.0, 0.0),
        ];
        assert_eq!(counting_error(1, 3), 2.0);
        let pairs = greedy_match(&actual, &estimated);
        assert_eq!(pairs.len(), 1);
        // The single truth is claimed by its nearest estimate; the far
        // spurious ones do not inflate the distance metrics.
        assert_eq!(pairs[0], (0, 0, 2.0));
        assert_eq!(mean_distance_error(&actual, &estimated), Some(2.0));
        assert_eq!(localization_error(&actual, &estimated, 8.0), Some(0.25));
    }
}
