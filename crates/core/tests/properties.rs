//! Property-based tests for the online CS pipeline's building blocks.

use crowdwifi_channel::RssReading;
use crowdwifi_core::centroid::{candidate_modes, centroid_of_dominant};
use crowdwifi_core::consolidate::Consolidator;
use crowdwifi_core::metrics::{counting_error, greedy_match, localization_error};
use crowdwifi_core::window::{windows_over, SlidingWindow, WindowConfig};
use crowdwifi_geo::{Grid, Point, Rect};
use proptest::prelude::*;

fn reading(i: usize) -> RssReading {
    RssReading::new(Point::new(i as f64, 0.0), -60.0, i as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn window_rounds_never_exceed_size(
        size in 1usize..30,
        step_raw in 1usize..30,
        n in 0usize..120,
    ) {
        let step = step_raw.min(size);
        let cfg = WindowConfig { size, step, ttl: f64::INFINITY };
        let readings: Vec<RssReading> = (0..n).map(reading).collect();
        let rounds = windows_over(&readings, cfg).unwrap();
        for round in &rounds {
            prop_assert!(round.len() <= size);
            prop_assert!(!round.is_empty());
            // Rounds are time-contiguous suffixes of the stream.
            for pair in round.windows(2) {
                prop_assert!(pair[0].time < pair[1].time);
            }
        }
        // Every reading appears in at least one round when n > 0.
        if n > 0 {
            let last = rounds.last().unwrap();
            prop_assert_eq!(last.last().unwrap().time, (n - 1) as f64);
        }
    }

    #[test]
    fn streaming_window_ttl_never_returns_expired(
        ttl in 1.0..20.0f64,
        n in 1usize..60,
    ) {
        let cfg = WindowConfig { size: 50, step: 1, ttl };
        let mut w = SlidingWindow::new(cfg).unwrap();
        for i in 0..n {
            if let Some(round) = w.push(reading(i)) {
                let now = i as f64;
                prop_assert!(round.iter().all(|r| now - r.time <= ttl));
            }
        }
    }

    #[test]
    fn consolidator_credit_is_conserved(
        points in proptest::collection::vec((0.0..200.0f64, 0.0..200.0f64), 1..40),
        merge_radius in 0.0..30.0f64,
    ) {
        let mut c = Consolidator::new(merge_radius);
        for &(x, y) in &points {
            c.merge_one(Point::new(x, y), 1.0);
        }
        let total: f64 = c.estimates().iter().map(|e| e.credit).sum();
        prop_assert!((total - points.len() as f64).abs() < 1e-9);
        // No two surviving estimates are within the merge radius of the
        // merge target they'd have joined — weaker invariant: count can
        // never exceed inputs.
        prop_assert!(c.estimates().len() <= points.len());
    }

    #[test]
    fn centroid_of_dominant_is_inside_grid(
        coeffs in proptest::collection::vec(0.0..1.0f64, 16),
        threshold in 0.05..1.0f64,
    ) {
        let grid = Grid::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(40.0, 40.0)).unwrap(),
            10.0,
        ).unwrap();
        if let Some(est) = centroid_of_dominant(&coeffs, &grid, threshold) {
            prop_assert!(grid.bounds().contains(est.position));
            prop_assert!(est.mass > 0.0);
        }
    }

    #[test]
    fn modes_partition_dominant_mass(
        coeffs in proptest::collection::vec(0.0..1.0f64, 16),
    ) {
        let grid = Grid::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(40.0, 40.0)).unwrap(),
            10.0,
        ).unwrap();
        let modes = candidate_modes(&coeffs, &grid, 0.3, 12.0, 16);
        let max = coeffs.iter().cloned().fold(0.0f64, f64::max);
        if max > 0.0 {
            let dominant_mass: f64 = coeffs.iter().filter(|&&c| c >= 0.3 * max).sum();
            let mode_mass: f64 = modes.iter().map(|m| m.mass).sum();
            prop_assert!((dominant_mass - mode_mass).abs() < 1e-9);
            // Sorted by descending mass.
            for w in modes.windows(2) {
                prop_assert!(w[0].mass >= w[1].mass - 1e-12);
            }
        } else {
            prop_assert!(modes.is_empty());
        }
    }

    #[test]
    fn greedy_match_pairs_are_unique(
        actual in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 0..8),
        estimated in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 0..8),
    ) {
        let a: Vec<Point> = actual.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let e: Vec<Point> = estimated.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let pairs = greedy_match(&a, &e);
        prop_assert_eq!(pairs.len(), a.len().min(e.len()));
        let mut ai: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let mut ei: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        ai.sort_unstable(); ai.dedup();
        ei.sort_unstable(); ei.dedup();
        prop_assert_eq!(ai.len(), pairs.len());
        prop_assert_eq!(ei.len(), pairs.len());
    }

    #[test]
    fn error_metrics_are_scale_consistent(
        k in 1usize..20,
        khat in 0usize..40,
    ) {
        let err = counting_error(k, khat);
        prop_assert!(err >= 0.0);
        // Exact count means zero error and vice versa.
        prop_assert_eq!(err == 0.0, k == khat);
    }

    #[test]
    fn localization_error_scales_inversely_with_lattice(
        lattice in 1.0..50.0f64,
    ) {
        let actual = [Point::new(0.0, 0.0)];
        let estimated = [Point::new(10.0, 0.0)];
        let e = localization_error(&actual, &estimated, lattice).unwrap();
        prop_assert!((e * lattice - 10.0).abs() < 1e-9);
    }
}
