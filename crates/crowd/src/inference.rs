//! Karger–Oh–Shah iterative inference (§5.3, Eq. 4).
//!
//! Real-valued messages flow along the assignment graph:
//!
//! ```text
//! x_{i→j} = Σ_{j' ∈ M_i \ j} L_{ij'} · y_{j'→i}
//! y_{j→i} = Σ_{i' ∈ N_j \ i} L_{i'j} · x_{i'→j}
//! ```
//!
//! and labels are decoded as `ẑ_i = sign(Σ_j L_ij · y_{j→i})`. The 0-th
//! iteration with `y ≡ 1` reduces to majority voting; subsequent
//! iterations weight each crowd-vehicle by its inferred reliability.

use crate::LabelMatrix;
use rand::Rng;

/// Configuration of the message-passing decoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeInference {
    /// Maximum iterations (paper: 100).
    pub max_iterations: usize,
    /// Message-convergence tolerance (paper: 1e-5, relative).
    pub tolerance: f64,
    /// Initialize worker messages from `Normal(1, 1)` as the paper
    /// suggests; when `false`, deterministically from 1.
    pub random_init: bool,
}

impl Default for IterativeInference {
    fn default() -> Self {
        IterativeInference {
            max_iterations: 100,
            tolerance: 1e-5,
            random_init: true,
        }
    }
}

/// Output of the decoder.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// Decoded task labels `ẑ ∈ ±1`.
    pub estimates: Vec<i8>,
    /// Per-worker reliability *scores* (mean of the worker's outgoing
    /// messages, normalized to unit RMS): positive ≈ trustworthy,
    /// near zero ≈ spammer, negative ≈ adversarial.
    pub worker_scores: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

impl InferenceResult {
    /// Maps the raw worker scores to probability-like reliabilities in
    /// `[0, 1]` via a logistic squash — spammers land near ½, strong
    /// hammers near 1 (used by the weighted-centroid fusion of §5.4).
    pub fn reliability_estimates(&self) -> Vec<f64> {
        self.worker_scores
            .iter()
            .map(|&s| 1.0 / (1.0 + (-s).exp()))
            .collect()
    }
}

impl IterativeInference {
    /// Runs message passing on the observed labels.
    ///
    /// The `rng` is used only for the `Normal(1, 1)` initialization; a
    /// deterministic run uses [`IterativeInference::random_init`] =
    /// `false`.
    pub fn run<R: Rng + ?Sized>(&self, labels: &LabelMatrix, rng: &mut R) -> InferenceResult {
        let graph = labels.graph();
        let n_edges = graph.edges().len();

        // Messages live on edges: x[e] = task→worker, y[e] = worker→task.
        let mut y: Vec<f64> = if self.random_init {
            (0..n_edges)
                .map(|_| crowdwifi_channel::noise::gaussian(rng, 1.0, 1.0))
                .collect()
        } else {
            vec![1.0; n_edges]
        };
        let mut x = vec![0.0; n_edges];
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iterations {
            iterations += 1;
            // Task → worker updates.
            for task in 0..graph.tasks() {
                let incident = graph.task_edges(task);
                let total: f64 = incident
                    .iter()
                    .map(|&e| labels.label(e) as f64 * y[e])
                    .sum();
                for &e in incident {
                    x[e] = total - labels.label(e) as f64 * y[e];
                }
            }
            // Worker → task updates.
            let y_old = y.clone();
            for worker in 0..graph.workers() {
                let incident = graph.worker_edges(worker);
                let total: f64 = incident
                    .iter()
                    .map(|&e| labels.label(e) as f64 * x[e])
                    .sum();
                for &e in incident {
                    y[e] = total - labels.label(e) as f64 * x[e];
                }
            }
            // The updates are scale-invariant but the raw magnitudes
            // grow geometrically (~(ℓγ)^t) and would overflow long
            // before 100 iterations; renormalize to unit RMS each sweep
            // and measure convergence on the normalized messages.
            let rms = (y.iter().map(|v| v * v).sum::<f64>() / n_edges.max(1) as f64).sqrt();
            if rms > 0.0 && rms.is_finite() {
                for v in y.iter_mut() {
                    *v /= rms;
                }
            }
            let max_change = y
                .iter()
                .zip(&y_old)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max);
            if max_change <= self.tolerance {
                converged = true;
                break;
            }
        }

        // Decode: ẑ_i = sign(Σ_{j ∈ M_i} L_ij y_{j→i}); ties resolve +1.
        let estimates: Vec<i8> = (0..graph.tasks())
            .map(|task| {
                let s: f64 = graph
                    .task_edges(task)
                    .iter()
                    .map(|&e| labels.label(e) as f64 * y[e])
                    .sum();
                if s >= 0.0 {
                    1
                } else {
                    -1
                }
            })
            .collect();

        // Worker scores: mean outgoing message, RMS-normalized so the
        // scale is comparable across graph sizes.
        let mut worker_scores: Vec<f64> = (0..graph.workers())
            .map(|worker| {
                let incident = graph.worker_edges(worker);
                incident.iter().map(|&e| y[e]).sum::<f64>() / incident.len().max(1) as f64
            })
            .collect();
        let rms = (worker_scores.iter().map(|s| s * s).sum::<f64>()
            / worker_scores.len().max(1) as f64)
            .sqrt();
        if rms > 0.0 {
            for s in worker_scores.iter_mut() {
                *s /= rms;
            }
        }

        InferenceResult {
            estimates,
            worker_scores,
            iterations,
            converged,
        }
    }

    /// Convenience: bit-error rate against known truth after running on
    /// labels generated from `pool` (used heavily by the Fig. 7 bench).
    pub fn decode_error<R: Rng + ?Sized>(
        &self,
        labels: &LabelMatrix,
        truth: &[i8],
        rng: &mut R,
    ) -> f64 {
        let result = self.run(labels, rng);
        crate::bit_error_rate(&result.estimates, truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteAssignment;
    use crate::worker::{SpammerHammerPrior, WorkerPool};
    use crate::{bit_error_rate, LabelMatrix};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn truth(n: usize) -> Vec<i8> {
        (0..n).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect()
    }

    #[test]
    fn perfect_workers_decode_perfectly() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let graph = BipartiteAssignment::regular(50, 3, 3, &mut rng).unwrap();
        let z = truth(50);
        let pool = WorkerPool::new(vec![1.0; graph.workers()]).unwrap();
        let labels = LabelMatrix::generate(&graph, &z, &pool, &mut rng);
        let result = IterativeInference::default().run(&labels, &mut rng);
        assert_eq!(bit_error_rate(&result.estimates, &z), 0.0);
    }

    #[test]
    fn beats_majority_voting_with_spammers() {
        let mut avg_kos = 0.0;
        let mut avg_mv = 0.0;
        let trials = 20;
        for seed in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(100 + seed);
            let graph = BipartiteAssignment::regular(300, 9, 9, &mut rng).unwrap();
            let z = truth(300);
            let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
            let labels = LabelMatrix::generate(&graph, &z, &pool, &mut rng);
            let kos = IterativeInference::default().run(&labels, &mut rng);
            avg_kos += bit_error_rate(&kos.estimates, &z);
            let mv = crate::aggregate::majority_vote(&labels);
            avg_mv += bit_error_rate(&mv, &z);
        }
        avg_kos /= trials as f64;
        avg_mv /= trials as f64;
        assert!(
            avg_kos < avg_mv,
            "KOS {avg_kos:.4} should beat MV {avg_mv:.4}"
        );
    }

    #[test]
    fn zeroth_iteration_equals_majority_vote() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let graph = BipartiteAssignment::regular(100, 5, 5, &mut rng).unwrap();
        let z = truth(100);
        let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
        let labels = LabelMatrix::generate(&graph, &z, &pool, &mut rng);
        // One iteration, deterministic init y = 1: decode uses y from
        // the first worker update; to compare against plain MV we run
        // with max_iterations = 1 and random_init = false — the first
        // x-update uses y = 1, reproducing the MV statistic inside x.
        let one = IterativeInference {
            max_iterations: 1,
            tolerance: 0.0,
            random_init: false,
        }
        .run(&labels, &mut rng);
        // Not an exact MV (y has been updated once) but must be highly
        // correlated with it.
        let mv = crate::aggregate::majority_vote(&labels);
        let agree = one
            .estimates
            .iter()
            .zip(&mv)
            .filter(|(a, b)| a == b)
            .count();
        assert!(agree >= 80, "agreement {agree}/100");
    }

    #[test]
    fn worker_scores_separate_hammers_from_spammers() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let graph = BipartiteAssignment::regular(500, 10, 10, &mut rng).unwrap();
        let z = truth(500);
        let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
        let labels = LabelMatrix::generate(&graph, &z, &pool, &mut rng);
        let result = IterativeInference::default().run(&labels, &mut rng);
        let mut hammer_score = 0.0;
        let mut spammer_score = 0.0;
        let mut hammers = 0;
        let mut spammers = 0;
        for (j, &q) in pool.reliabilities().iter().enumerate() {
            if q == 1.0 {
                hammer_score += result.worker_scores[j];
                hammers += 1;
            } else {
                spammer_score += result.worker_scores[j];
                spammers += 1;
            }
        }
        hammer_score /= hammers as f64;
        spammer_score /= spammers as f64;
        assert!(
            hammer_score > spammer_score + 0.5,
            "hammers {hammer_score:.2} vs spammers {spammer_score:.2}"
        );
        // Squashed reliabilities stay in [0, 1].
        for r in result.reliability_estimates() {
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn deterministic_init_is_reproducible() {
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let graph = BipartiteAssignment::regular(60, 4, 4, &mut rng).unwrap();
        let z = truth(60);
        let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
        let labels = LabelMatrix::generate(&graph, &z, &pool, &mut rng);
        let cfg = IterativeInference {
            random_init: false,
            ..IterativeInference::default()
        };
        let mut rng1 = ChaCha8Rng::seed_from_u64(1);
        let mut rng2 = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(
            cfg.run(&labels, &mut rng1).estimates,
            cfg.run(&labels, &mut rng2).estimates
        );
    }
}
