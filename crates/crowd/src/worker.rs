//! Crowd-vehicle reliability models (§5.1).

use crate::{CrowdError, Result};
use rand::Rng;

/// A pool of crowd-vehicles with per-vehicle reliability `q_j` — the
/// probability that vehicle `j` answers a mapping task correctly.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerPool {
    reliabilities: Vec<f64>,
}

impl WorkerPool {
    /// Creates a pool from explicit reliabilities, each in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`CrowdError::InvalidParameter`] when empty or any value
    /// is out of `[0, 1]`.
    pub fn new(reliabilities: Vec<f64>) -> Result<Self> {
        if reliabilities.is_empty() {
            return Err(CrowdError::InvalidParameter(
                "worker pool must be non-empty".to_string(),
            ));
        }
        if reliabilities
            .iter()
            .any(|&q| !(0.0..=1.0).contains(&q) || !q.is_finite())
        {
            return Err(CrowdError::InvalidParameter(
                "reliabilities must lie in [0, 1]".to_string(),
            ));
        }
        Ok(WorkerPool { reliabilities })
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.reliabilities.len()
    }

    /// Whether the pool is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.reliabilities.is_empty()
    }

    /// Reliability `q_j` of worker `j`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn reliability(&self, worker: usize) -> f64 {
        self.reliabilities[worker]
    }

    /// All reliabilities.
    pub fn reliabilities(&self) -> &[f64] {
        &self.reliabilities
    }

    /// Average reliability of the pool.
    pub fn mean_reliability(&self) -> f64 {
        self.reliabilities.iter().sum::<f64>() / self.reliabilities.len() as f64
    }
}

/// The discrete spammer–hammer prior: a vehicle is a *hammer*
/// (`q = hammer_q`) with probability `hammer_fraction`, otherwise a
/// *spammer* (`q = spammer_q ≈ ½`, i.e. random answers).
///
/// The default is the paper's typical prior: hammers and spammers with
/// equal probability, `q ∈ {1.0, 0.5}`. Note `E[q] = 0.75 > ½`, as §5.1
/// requires to keep spammers from overwhelming the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpammerHammerPrior {
    /// Probability that a drawn vehicle is a hammer.
    pub hammer_fraction: f64,
    /// Reliability of hammers (≈ 1).
    pub hammer_q: f64,
    /// Reliability of spammers (≈ ½).
    pub spammer_q: f64,
}

impl Default for SpammerHammerPrior {
    fn default() -> Self {
        SpammerHammerPrior {
            hammer_fraction: 0.5,
            hammer_q: 1.0,
            spammer_q: 0.5,
        }
    }
}

impl SpammerHammerPrior {
    /// Creates a prior, validating all probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`CrowdError::InvalidParameter`] when any value is
    /// outside `[0, 1]` or when `E[q] ≤ ½` (spammers would overwhelm
    /// the system; §5.1 requires `E[q] > ½`).
    pub fn new(hammer_fraction: f64, hammer_q: f64, spammer_q: f64) -> Result<Self> {
        for (name, v) in [
            ("hammer_fraction", hammer_fraction),
            ("hammer_q", hammer_q),
            ("spammer_q", spammer_q),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(CrowdError::InvalidParameter(format!(
                    "{name} must lie in [0, 1], got {v}"
                )));
            }
        }
        let expected = hammer_fraction * hammer_q + (1.0 - hammer_fraction) * spammer_q;
        if expected <= 0.5 {
            return Err(CrowdError::InvalidParameter(format!(
                "E[q] = {expected} must exceed 1/2"
            )));
        }
        Ok(SpammerHammerPrior {
            hammer_fraction,
            hammer_q,
            spammer_q,
        })
    }

    /// Expected reliability `E[q]` under this prior.
    pub fn expected_reliability(&self) -> f64 {
        self.hammer_fraction * self.hammer_q + (1.0 - self.hammer_fraction) * self.spammer_q
    }

    /// Draws one reliability.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.random_range(0.0..1.0) < self.hammer_fraction {
            self.hammer_q
        } else {
            self.spammer_q
        }
    }

    /// Draws a pool of `n` i.i.d. reliabilities.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn draw_pool<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> WorkerPool {
        assert!(n > 0, "pool size must be positive");
        let reliabilities = (0..n).map(|_| self.draw(rng)).collect();
        WorkerPool::new(reliabilities).expect("drawn reliabilities are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pool_validation() {
        assert!(WorkerPool::new(vec![]).is_err());
        assert!(WorkerPool::new(vec![1.1]).is_err());
        assert!(WorkerPool::new(vec![-0.1]).is_err());
        assert!(WorkerPool::new(vec![0.5, 1.0]).is_ok());
    }

    #[test]
    fn prior_validation() {
        assert!(SpammerHammerPrior::new(0.5, 1.0, 0.5).is_ok());
        // E[q] = 0.5 exactly: rejected.
        assert!(SpammerHammerPrior::new(0.0, 1.0, 0.5).is_err());
        assert!(SpammerHammerPrior::new(1.5, 1.0, 0.5).is_err());
    }

    #[test]
    fn drawn_pool_matches_prior_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let prior = SpammerHammerPrior::default();
        let pool = prior.draw_pool(4000, &mut rng);
        let hammers = pool.reliabilities().iter().filter(|&&q| q == 1.0).count();
        let frac = hammers as f64 / pool.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "hammer fraction {frac}");
        assert!((pool.mean_reliability() - 0.75).abs() < 0.03);
        assert!(
            (prior.expected_reliability() - 0.75).abs() < 1e-12,
            "analytic E[q]"
        );
    }

    #[test]
    fn draw_returns_only_the_two_levels() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let prior = SpammerHammerPrior::default();
        for _ in 0..100 {
            let q = prior.draw(&mut rng);
            assert!(q == 1.0 || q == 0.5);
        }
    }
}
