//! Offline crowdsourcing for CrowdWiFi (§5 of the paper).
//!
//! The crowd-server assigns AP-mapping tasks to crowd-vehicles on a
//! random (ℓ,γ)-regular bipartite graph, collects their ±1 labels,
//! infers each vehicle's reliability by iterative message passing, and
//! fuses location estimates by reliability-weighted centroids:
//!
//! * [`worker`] — the spammer–hammer reliability model (§5.1),
//! * [`graph`] — bipartite task assignment (§5.2),
//! * [`inference`] — Karger–Oh–Shah iterative inference (§5.3, Eq. 4),
//! * [`aggregate`] — the comparison aggregators of Fig. 7: majority
//!   voting, a Skyhook-style rank-correlation weighting, and the oracle
//!   lower bound with known reliabilities,
//! * [`em`] — a Dawid–Skene-style EM aggregator (the "learning from
//!   crowds" family the paper cites) as an extra comparison point,
//! * [`fusion`] — reliability-weighted centroid fine estimation (§5.4).
//!
//! # Example
//!
//! ```
//! use crowdwifi_crowd::graph::BipartiteAssignment;
//! use crowdwifi_crowd::inference::IterativeInference;
//! use crowdwifi_crowd::worker::SpammerHammerPrior;
//! use crowdwifi_crowd::LabelMatrix;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let graph = BipartiteAssignment::regular(100, 5, 5, &mut rng)?;
//! let truth: Vec<i8> = (0..100).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
//! let workers = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
//! let labels = LabelMatrix::generate(&graph, &truth, &workers, &mut rng);
//! let result = IterativeInference::default().run(&labels, &mut rng);
//! let errors = result
//!     .estimates
//!     .iter()
//!     .zip(&truth)
//!     .filter(|(a, b)| a != b)
//!     .count();
//! assert!(errors < 15, "{errors} bit errors out of 100");
//! # Ok::<(), crowdwifi_crowd::CrowdError>(())
//! ```

#![deny(missing_docs)]

pub mod aggregate;
pub mod em;
pub mod fusion;
pub mod graph;
pub mod inference;
pub mod worker;

use graph::BipartiteAssignment;
use rand::Rng;
use worker::WorkerPool;

/// Errors produced by the crowdsourcing layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CrowdError {
    /// Infeasible or inconsistent graph parameters.
    InvalidGraph(String),
    /// Invalid model parameter.
    InvalidParameter(String),
}

impl std::fmt::Display for CrowdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrowdError::InvalidGraph(why) => write!(f, "invalid assignment graph: {why}"),
            CrowdError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
        }
    }
}

impl std::error::Error for CrowdError {}

/// Convenience alias for crowdsourcing results.
pub type Result<T> = std::result::Result<T, CrowdError>;

/// The observed label matrix `L ∈ {0, ±1}^{N×M}` in sparse edge form:
/// `labels[e]` is the answer on edge `e` of the assignment graph.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelMatrix {
    graph: BipartiteAssignment,
    labels: Vec<i8>,
}

impl LabelMatrix {
    /// Generates labels: worker `j` answers task `i` correctly with
    /// probability `q_j`, otherwise flips the sign.
    ///
    /// # Panics
    ///
    /// Panics if `truth.len()` differs from the graph's task count, if
    /// `workers` is smaller than the graph's worker count, or if any
    /// truth value is not ±1.
    pub fn generate<R: Rng + ?Sized>(
        graph: &BipartiteAssignment,
        truth: &[i8],
        workers: &WorkerPool,
        rng: &mut R,
    ) -> Self {
        assert_eq!(truth.len(), graph.tasks(), "truth/task count mismatch");
        assert!(
            workers.len() >= graph.workers(),
            "worker pool smaller than graph"
        );
        assert!(
            truth.iter().all(|&z| z == 1 || z == -1),
            "truth labels must be ±1"
        );
        let labels = graph
            .edges()
            .iter()
            .map(|&(task, worker)| {
                let correct = rng.random_range(0.0..1.0) < workers.reliability(worker);
                if correct {
                    truth[task]
                } else {
                    -truth[task]
                }
            })
            .collect();
        LabelMatrix {
            graph: graph.clone(),
            labels,
        }
    }

    /// Wraps precomputed labels (one per graph edge, in edge order).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the edge count or any label
    /// is not ±1.
    pub fn from_labels(graph: BipartiteAssignment, labels: Vec<i8>) -> Self {
        assert_eq!(labels.len(), graph.edges().len(), "label/edge mismatch");
        assert!(
            labels.iter().all(|&l| l == 1 || l == -1),
            "labels must be ±1"
        );
        LabelMatrix { graph, labels }
    }

    /// The underlying assignment graph.
    pub fn graph(&self) -> &BipartiteAssignment {
        &self.graph
    }

    /// Label on edge `e` (parallel to `graph().edges()`).
    pub fn label(&self, edge: usize) -> i8 {
        self.labels[edge]
    }

    /// All labels in edge order.
    pub fn labels(&self) -> &[i8] {
        &self.labels
    }
}

/// Fraction of tasks whose estimate differs from the truth — the
/// "bit-wise error rate" of §5.2. An empty task set scores 0.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn bit_error_rate(estimates: &[i8], truth: &[i8]) -> f64 {
    assert_eq!(estimates.len(), truth.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let wrong = estimates.iter().zip(truth).filter(|(a, b)| a != b).count();
    wrong as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use worker::SpammerHammerPrior;

    #[test]
    fn bit_error_rate_counts_mismatches() {
        assert_eq!(bit_error_rate(&[1, -1, 1], &[1, 1, 1]), 1.0 / 3.0);
        assert_eq!(bit_error_rate(&[], &[]), 0.0);
        assert_eq!(bit_error_rate(&[1], &[1]), 0.0);
    }

    #[test]
    fn perfect_workers_label_perfectly() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let graph = BipartiteAssignment::regular(20, 3, 3, &mut rng).unwrap();
        let truth: Vec<i8> = (0..20).map(|i| if i % 3 == 0 { 1 } else { -1 }).collect();
        let workers = WorkerPool::new(vec![1.0; graph.workers()]).unwrap();
        let labels = LabelMatrix::generate(&graph, &truth, &workers, &mut rng);
        for (e, &(task, _)) in graph.edges().iter().enumerate() {
            assert_eq!(labels.label(e), truth[task]);
        }
    }

    #[test]
    fn spammers_label_randomly() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let graph = BipartiteAssignment::regular(200, 5, 5, &mut rng).unwrap();
        let truth = vec![1i8; 200];
        let workers = WorkerPool::new(vec![0.5; graph.workers()]).unwrap();
        let labels = LabelMatrix::generate(&graph, &truth, &workers, &mut rng);
        let pos = labels.labels().iter().filter(|&&l| l == 1).count();
        let frac = pos as f64 / labels.labels().len() as f64;
        assert!((frac - 0.5).abs() < 0.06, "spammer agreement {frac}");
    }

    #[test]
    fn prior_pool_integrates_with_generation() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let graph = BipartiteAssignment::regular(50, 4, 4, &mut rng).unwrap();
        let truth = vec![1i8; 50];
        let workers = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
        let labels = LabelMatrix::generate(&graph, &truth, &workers, &mut rng);
        assert_eq!(labels.labels().len(), graph.edges().len());
    }

    #[test]
    #[should_panic(expected = "truth/task count mismatch")]
    fn generate_validates_truth_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let graph = BipartiteAssignment::regular(10, 2, 2, &mut rng).unwrap();
        let workers = WorkerPool::new(vec![1.0; graph.workers()]).unwrap();
        LabelMatrix::generate(&graph, &[1, -1], &workers, &mut rng);
    }
}
