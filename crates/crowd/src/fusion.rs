//! Reliability-weighted centroid fine estimation (§5.4, Fig. 4(b)).
//!
//! Crowd-vehicles upload coarse AP estimates produced on *their own*
//! driving grids; the same physical AP therefore lands on different
//! nearby grid points for different vehicles. The crowd-server merges
//! overlapping submissions with a centroid weighted by each vehicle's
//! inferred reliability, edging the merged estimate toward the true
//! location.

use crowdwifi_geo::Point;
use serde::{Deserialize, Serialize};

/// One crowd-vehicle's uploaded AP set with its inferred reliability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submission {
    /// The vehicle's coarse AP location estimates.
    pub ap_positions: Vec<Point>,
    /// Reliability weight in `[0, 1]` (from iterative inference).
    pub reliability: f64,
}

impl Submission {
    /// Creates a submission.
    ///
    /// # Panics
    ///
    /// Panics if the reliability is outside `[0, 1]`.
    pub fn new(ap_positions: Vec<Point>, reliability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&reliability) && reliability.is_finite(),
            "reliability must lie in [0, 1]"
        );
        Submission {
            ap_positions,
            reliability,
        }
    }
}

/// A fused AP estimate with the total reliability mass behind it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusedAp {
    /// Reliability-weighted centroid position.
    pub position: Point,
    /// Sum of contributing reliabilities.
    pub support: f64,
    /// Number of distinct submissions that contributed.
    pub contributors: usize,
}

/// Fuses submissions by reliability-weighted centroid: estimates from
/// different vehicles within `merge_radius` of each other merge into
/// one AP, positioned at `Σ q_v·p_v / Σ q_v`.
///
/// Vehicles with reliability ≤ `min_reliability` are ignored entirely
/// (spammer cutoff); fused APs supported by less than `min_support`
/// total reliability are dropped.
///
/// # Panics
///
/// Panics if `merge_radius` is negative or non-finite.
pub fn fuse_submissions(
    submissions: &[Submission],
    merge_radius: f64,
    min_reliability: f64,
    min_support: f64,
) -> Vec<FusedAp> {
    assert!(
        merge_radius >= 0.0 && merge_radius.is_finite(),
        "merge_radius must be non-negative and finite"
    );
    #[derive(Debug)]
    struct Cluster {
        wx: f64,
        wy: f64,
        w: f64,
        contributors: usize,
    }
    let mut clusters: Vec<Cluster> = Vec::new();

    for sub in submissions {
        if sub.reliability <= min_reliability {
            continue;
        }
        for &p in &sub.ap_positions {
            if !p.is_finite() {
                continue;
            }
            // Nearest existing cluster within the merge radius.
            let nearest = clusters
                .iter_mut()
                .map(|c| {
                    let cp = Point::new(c.wx / c.w, c.wy / c.w);
                    (cp.distance(p), c)
                })
                .filter(|(d, _)| *d <= merge_radius)
                .min_by(|(a, _), (b, _)| a.partial_cmp(b).expect("finite distances"));
            match nearest {
                Some((_, c)) => {
                    c.wx += sub.reliability * p.x;
                    c.wy += sub.reliability * p.y;
                    c.w += sub.reliability;
                    c.contributors += 1;
                }
                None => clusters.push(Cluster {
                    wx: sub.reliability * p.x,
                    wy: sub.reliability * p.y,
                    w: sub.reliability,
                    contributors: 1,
                }),
            }
        }
    }

    clusters
        .into_iter()
        .filter(|c| c.w >= min_support)
        .map(|c| FusedAp {
            position: Point::new(c.wx / c.w, c.wy / c.w),
            support: c.w,
            contributors: c.contributors,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_grids_merge_toward_truth() {
        // Fig. 4(b): three vehicles on different grids put the same AP
        // on three nearby grid points; fusion recovers the middle.
        let subs = [
            Submission::new(vec![Point::new(10.0, 10.0)], 1.0),
            Submission::new(vec![Point::new(14.0, 10.0)], 1.0),
            Submission::new(vec![Point::new(12.0, 14.0)], 1.0),
        ];
        let fused = fuse_submissions(&subs, 10.0, 0.0, 0.0);
        assert_eq!(fused.len(), 1);
        assert!((fused[0].position.x - 12.0).abs() < 1e-9);
        assert!((fused[0].position.y - 11.333333).abs() < 1e-5);
        assert_eq!(fused[0].contributors, 3);
    }

    #[test]
    fn reliability_weights_dominate() {
        let subs = [
            Submission::new(vec![Point::new(0.0, 0.0)], 0.9),
            Submission::new(vec![Point::new(10.0, 0.0)], 0.1),
        ];
        let fused = fuse_submissions(&subs, 20.0, 0.0, 0.0);
        assert_eq!(fused.len(), 1);
        assert!((fused[0].position.x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spammers_are_cut_off() {
        let subs = [
            Submission::new(vec![Point::new(0.0, 0.0)], 0.95),
            Submission::new(vec![Point::new(500.0, 0.0)], 0.4), // spammer junk
        ];
        let fused = fuse_submissions(&subs, 20.0, 0.5, 0.0);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].position, Point::new(0.0, 0.0));
    }

    #[test]
    fn min_support_drops_lonely_estimates() {
        let subs = [
            Submission::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)], 0.9),
            Submission::new(vec![Point::new(1.0, 0.0)], 0.9),
        ];
        // (100, 0) has support 0.9 < 1.5, the shared AP has 1.8.
        let fused = fuse_submissions(&subs, 10.0, 0.0, 1.5);
        assert_eq!(fused.len(), 1);
        assert!(fused[0].position.x < 2.0);
    }

    #[test]
    fn distinct_aps_stay_distinct() {
        let subs = [Submission::new(
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
            1.0,
        )];
        let fused = fuse_submissions(&subs, 10.0, 0.0, 0.0);
        assert_eq!(fused.len(), 2);
    }

    #[test]
    #[should_panic(expected = "reliability")]
    fn submission_validates_reliability() {
        Submission::new(vec![], 1.5);
    }
}
