//! Dawid–Skene-style EM aggregation (the "learning from crowds" family
//! the paper cites as ref. \[14\], Raykar et al.).
//!
//! A classical alternative to message passing: alternately estimate the
//! posterior of each task label given current worker reliabilities
//! (E-step) and re-estimate each worker's reliability from the posterior
//! agreement (M-step). For binary one-coin workers this is the one-coin
//! Dawid–Skene model.

use crate::LabelMatrix;

/// Configuration of the EM aggregator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmAggregator {
    /// Maximum EM sweeps.
    pub max_iterations: usize,
    /// Convergence tolerance on the posterior change.
    pub tolerance: f64,
    /// Beta-like smoothing pseudo-counts on reliability estimates (keeps
    /// a worker with few, all-correct answers from being assigned q = 1
    /// exactly).
    pub smoothing: f64,
}

impl Default for EmAggregator {
    fn default() -> Self {
        EmAggregator {
            max_iterations: 100,
            tolerance: 1e-6,
            smoothing: 1.0,
        }
    }
}

/// Output of the EM aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct EmResult {
    /// Decoded labels `ẑ ∈ ±1`.
    pub estimates: Vec<i8>,
    /// Posterior `P(z_i = +1)` per task.
    pub posteriors: Vec<f64>,
    /// Estimated reliability `q̂_j` per worker.
    pub reliabilities: Vec<f64>,
    /// EM sweeps performed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

impl EmAggregator {
    /// Runs one-coin Dawid–Skene EM on the observed labels.
    pub fn run(&self, labels: &LabelMatrix) -> EmResult {
        let graph = labels.graph();
        let n = graph.tasks();
        let m = graph.workers();

        // Initialize posteriors from majority voting.
        let mut posterior: Vec<f64> = (0..n)
            .map(|task| {
                let s: i32 = graph
                    .task_edges(task)
                    .iter()
                    .map(|&e| labels.label(e) as i32)
                    .sum();
                let deg = graph.task_edges(task).len() as f64;
                0.5 + 0.5 * s as f64 / deg.max(1.0)
            })
            .collect();
        let mut reliability = vec![0.75; m];
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iterations {
            iterations += 1;

            // M-step: q̂_j = (smoothed) expected fraction of agreements.
            for (worker, q) in reliability.iter_mut().enumerate() {
                let mut agree = self.smoothing;
                let mut total = 2.0 * self.smoothing;
                for &e in graph.worker_edges(worker) {
                    let (task, _) = graph.edges()[e];
                    let p_plus = posterior[task];
                    let p_agree = if labels.label(e) == 1 {
                        p_plus
                    } else {
                        1.0 - p_plus
                    };
                    agree += p_agree;
                    total += 1.0;
                }
                *q = (agree / total).clamp(1e-4, 1.0 - 1e-4);
            }

            // E-step: posterior of each task from the independent-worker
            // likelihood with a uniform prior.
            let mut max_change = 0.0_f64;
            for (task, post) in posterior.iter_mut().enumerate().take(n) {
                let mut log_plus = 0.0;
                let mut log_minus = 0.0;
                for &e in graph.task_edges(task) {
                    let (_, worker) = graph.edges()[e];
                    let q = reliability[worker];
                    if labels.label(e) == 1 {
                        log_plus += q.ln();
                        log_minus += (1.0 - q).ln();
                    } else {
                        log_plus += (1.0 - q).ln();
                        log_minus += q.ln();
                    }
                }
                // Stable softmax over the two hypotheses.
                let mx = log_plus.max(log_minus);
                let p = (log_plus - mx).exp() / ((log_plus - mx).exp() + (log_minus - mx).exp());
                max_change = max_change.max((p - *post).abs());
                *post = p;
            }
            if max_change <= self.tolerance {
                converged = true;
                break;
            }
        }

        let estimates = posterior
            .iter()
            .map(|&p| if p >= 0.5 { 1 } else { -1 })
            .collect();
        EmResult {
            estimates,
            posteriors: posterior,
            reliabilities: reliability,
            iterations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::majority_vote;
    use crate::graph::BipartiteAssignment;
    use crate::worker::{SpammerHammerPrior, WorkerPool};
    use crate::{bit_error_rate, LabelMatrix};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn truth(n: usize) -> Vec<i8> {
        (0..n).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect()
    }

    #[test]
    fn perfect_workers_decode_perfectly() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let graph = BipartiteAssignment::regular(60, 3, 3, &mut rng).unwrap();
        let z = truth(60);
        let pool = WorkerPool::new(vec![1.0; graph.workers()]).unwrap();
        let labels = LabelMatrix::generate(&graph, &z, &pool, &mut rng);
        let result = EmAggregator::default().run(&labels);
        assert_eq!(bit_error_rate(&result.estimates, &z), 0.0);
        assert!(result.converged);
    }

    #[test]
    fn em_beats_majority_voting_with_spammers() {
        let mut em_total = 0.0;
        let mut mv_total = 0.0;
        for seed in 0..15u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(300 + seed);
            let graph = BipartiteAssignment::regular(300, 9, 9, &mut rng).unwrap();
            let z = truth(300);
            let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
            let labels = LabelMatrix::generate(&graph, &z, &pool, &mut rng);
            em_total += bit_error_rate(&EmAggregator::default().run(&labels).estimates, &z);
            mv_total += bit_error_rate(&majority_vote(&labels), &z);
        }
        assert!(
            em_total < mv_total,
            "EM {em_total:.3} should beat MV {mv_total:.3}"
        );
    }

    #[test]
    fn reliability_estimates_separate_spammers() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let graph = BipartiteAssignment::regular(400, 10, 10, &mut rng).unwrap();
        let z = truth(400);
        let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
        let labels = LabelMatrix::generate(&graph, &z, &pool, &mut rng);
        let result = EmAggregator::default().run(&labels);
        let mut hammer_q = 0.0;
        let mut spam_q = 0.0;
        let mut hams = 0;
        let mut spams = 0;
        for (j, &q) in pool.reliabilities().iter().enumerate() {
            if q == 1.0 {
                hammer_q += result.reliabilities[j];
                hams += 1;
            } else {
                spam_q += result.reliabilities[j];
                spams += 1;
            }
        }
        hammer_q /= hams as f64;
        spam_q /= spams as f64;
        assert!(
            hammer_q > 0.85 && spam_q < 0.7,
            "estimated q: hammers {hammer_q:.2}, spammers {spam_q:.2}"
        );
    }

    #[test]
    fn posteriors_are_probabilities() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let graph = BipartiteAssignment::regular(50, 5, 5, &mut rng).unwrap();
        let z = truth(50);
        let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
        let labels = LabelMatrix::generate(&graph, &z, &pool, &mut rng);
        let result = EmAggregator::default().run(&labels);
        assert!(result
            .posteriors
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p) && p.is_finite()));
        assert!(result
            .reliabilities
            .iter()
            .all(|&q| (0.0..=1.0).contains(&q)));
    }
}
