//! Baseline label aggregators compared in Fig. 7.

use crate::worker::WorkerPool;
use crate::LabelMatrix;

/// Plain majority voting: `ẑ_i = sign(Σ_j L_ij)`, ties decoded as `+1`.
///
/// Error-prone with many spammers, since every crowd-vehicle is weighted
/// equally (§5.3).
pub fn majority_vote(labels: &LabelMatrix) -> Vec<i8> {
    let graph = labels.graph();
    (0..graph.tasks())
        .map(|task| {
            let s: i32 = graph
                .task_edges(task)
                .iter()
                .map(|&e| labels.label(e) as i32)
                .sum();
            if s >= 0 {
                1
            } else {
                -1
            }
        })
        .collect()
}

/// Oracle lower bound: weighted vote with the **true** reliabilities
/// known, each vote weighted by its log-likelihood ratio
/// `log(q_j / (1 − q_j))` (the optimal per-task decoder for independent
/// workers).
///
/// # Panics
///
/// Panics if the pool is smaller than the graph's worker count.
pub fn oracle_vote(labels: &LabelMatrix, pool: &WorkerPool) -> Vec<i8> {
    let graph = labels.graph();
    assert!(pool.len() >= graph.workers(), "pool smaller than graph");
    let weight = |q: f64| {
        // Clamp to keep weights finite for q ∈ {0, 1}.
        let q = q.clamp(1e-6, 1.0 - 1e-6);
        (q / (1.0 - q)).ln()
    };
    (0..graph.tasks())
        .map(|task| {
            let s: f64 = graph
                .task_edges(task)
                .iter()
                .map(|&e| {
                    let (_, worker) = graph.edges()[e];
                    labels.label(e) as f64 * weight(pool.reliability(worker))
                })
                .sum();
            if s >= 0.0 {
                1
            } else {
                -1
            }
        })
        .collect()
}

/// Skyhook-style aggregation: workers are weighted by the Spearman
/// rank-order correlation of their answer vector against the
/// majority-vote consensus (the paper describes Skyhook as "comparing
/// relative rankings using the Spearman rank-order correlation
/// coefficient" [4, 15]); the final decode is the correlation-weighted
/// vote. Negative correlations are clamped to zero (an anti-correlated
/// worker is distrusted, not inverted — Skyhook has no notion of
/// adversarial inversion).
pub fn skyhook_rank_vote(labels: &LabelMatrix) -> Vec<i8> {
    let graph = labels.graph();
    let consensus = majority_vote(labels);

    // Worker weight: Spearman correlation of its labels vs consensus on
    // the tasks it answered. For ±1 vectors the rank correlation equals
    // the Pearson correlation of the signs.
    let mut weights = vec![0.0; graph.workers()];
    for (worker, weight) in weights.iter_mut().enumerate() {
        let edges = graph.worker_edges(worker);
        if edges.is_empty() {
            continue;
        }
        let xs: Vec<f64> = edges.iter().map(|&e| labels.label(e) as f64).collect();
        let ys: Vec<f64> = edges
            .iter()
            .map(|&e| consensus[graph.edges()[e].0] as f64)
            .collect();
        let constant = xs.iter().all(|&x| x == xs[0]) || ys.iter().all(|&y| y == ys[0]);
        *weight = if constant {
            // Rank correlation is undefined (0/0) on constant vectors —
            // e.g. a worker whose few tasks all happen to share one true
            // label. Fall back to the plain agreement rate mapped to
            // [0, 1] so such workers don't silently abstain.
            let agree = xs.iter().zip(&ys).filter(|(x, y)| x == y).count() as f64 / xs.len() as f64;
            (2.0 * agree - 1.0).max(0.0)
        } else {
            spearman(&xs, &ys).max(0.0)
        };
    }

    (0..graph.tasks())
        .map(|task| {
            let s: f64 = graph
                .task_edges(task)
                .iter()
                .map(|&e| {
                    let (_, worker) = graph.edges()[e];
                    labels.label(e) as f64 * weights[worker]
                })
                .sum();
            if s >= 0.0 {
                1
            } else {
                -1
            }
        })
        .collect()
}

/// Spearman rank-order correlation coefficient of two equal-length
/// samples (average ranks for ties). Returns 0 when either sample is
/// constant.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

fn ranks(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("finite values"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Tie group [i, j).
        let mut j = i + 1;
        while j < n && v[order[j]] == v[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j - 1) as f64 / 2.0 + 1.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg_rank;
        }
        i = j;
    }
    ranks
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteAssignment;
    use crate::worker::SpammerHammerPrior;
    use crate::{bit_error_rate, LabelMatrix};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn truth(n: usize) -> Vec<i8> {
        (0..n).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect()
    }

    #[test]
    fn majority_vote_simple_case() {
        let g = BipartiteAssignment::from_edge_list(1, 3, vec![(0, 0), (0, 1), (0, 2)]).unwrap();
        let labels = LabelMatrix::from_labels(g, vec![1, 1, -1]);
        assert_eq!(majority_vote(&labels), vec![1]);
    }

    #[test]
    fn oracle_trusts_the_reliable_minority() {
        // One hammer (q ≈ 1) outvotes two near-spammers when weighted.
        let g = BipartiteAssignment::from_edge_list(1, 3, vec![(0, 0), (0, 1), (0, 2)]).unwrap();
        let labels = LabelMatrix::from_labels(g, vec![1, -1, -1]);
        let pool = WorkerPool::new(vec![0.99, 0.51, 0.51]).unwrap();
        assert_eq!(oracle_vote(&labels, &pool), vec![1]);
        assert_eq!(majority_vote(&labels), vec![-1]);
    }

    #[test]
    fn spearman_known_values() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_handles_ties_with_average_ranks() {
        // Monotone with ties still correlates positively.
        let r = spearman(&[1.0, 1.0, 2.0, 3.0], &[5.0, 6.0, 7.0, 8.0]);
        assert!(r > 0.9, "got {r}");
    }

    #[test]
    fn skyhook_beats_plain_majority_under_spam() {
        let mut wins = 0;
        let trials = 20;
        for seed in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(200 + seed);
            let graph = BipartiteAssignment::regular(300, 9, 9, &mut rng).unwrap();
            let z = truth(300);
            let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
            let labels = LabelMatrix::generate(&graph, &z, &pool, &mut rng);
            let sky = bit_error_rate(&skyhook_rank_vote(&labels), &z);
            let mv = bit_error_rate(&majority_vote(&labels), &z);
            if sky <= mv {
                wins += 1;
            }
        }
        assert!(wins >= 15, "skyhook beat MV in only {wins}/{trials} trials");
    }

    #[test]
    fn oracle_is_the_floor() {
        let mut rng = ChaCha8Rng::seed_from_u64(300);
        let graph = BipartiteAssignment::regular(400, 7, 7, &mut rng).unwrap();
        let z = truth(400);
        let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
        let labels = LabelMatrix::generate(&graph, &z, &pool, &mut rng);
        let oracle = bit_error_rate(&oracle_vote(&labels, &pool), &z);
        let mv = bit_error_rate(&majority_vote(&labels), &z);
        assert!(oracle <= mv, "oracle {oracle} worse than MV {mv}");
    }
}
