//! Random (ℓ,γ)-regular bipartite task-assignment graphs (§5.2).
//!
//! Every task is labeled by `ℓ` distinct crowd-vehicles and every
//! crowd-vehicle labels `γ` distinct tasks, so with `n` tasks the pool
//! has `m = n·ℓ/γ` vehicles. Graphs are drawn with the configuration
//! model (random stub matching) with repair passes to remove duplicate
//! edges.

use crate::{CrowdError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// A bipartite assignment of tasks to workers.
#[derive(Debug, Clone, PartialEq)]
pub struct BipartiteAssignment {
    tasks: usize,
    workers: usize,
    /// Edge list `(task, worker)`, the canonical edge order.
    edges: Vec<(usize, usize)>,
    /// Edge indices incident to each task.
    task_edges: Vec<Vec<usize>>,
    /// Edge indices incident to each worker.
    worker_edges: Vec<Vec<usize>>,
}

impl BipartiteAssignment {
    /// Draws a random (ℓ,γ)-regular graph with `tasks` tasks.
    ///
    /// # Errors
    ///
    /// Returns [`CrowdError::InvalidGraph`] when a degree is zero, when
    /// `tasks·ℓ` is not divisible by `γ`, or when duplicate-edge repair
    /// fails (pathologically dense parameters).
    pub fn regular<R: Rng + ?Sized>(
        tasks: usize,
        workers_per_task: usize,
        tasks_per_worker: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if tasks == 0 || workers_per_task == 0 || tasks_per_worker == 0 {
            return Err(CrowdError::InvalidGraph(
                "degrees and task count must be positive".to_string(),
            ));
        }
        let stubs = tasks * workers_per_task;
        if !stubs.is_multiple_of(tasks_per_worker) {
            return Err(CrowdError::InvalidGraph(format!(
                "tasks·ℓ = {stubs} not divisible by γ = {tasks_per_worker}"
            )));
        }
        let workers = stubs / tasks_per_worker;
        if workers_per_task > workers {
            return Err(CrowdError::InvalidGraph(format!(
                "ℓ = {workers_per_task} exceeds worker count {workers}"
            )));
        }

        // Configuration model: task stubs in order, worker stubs
        // shuffled, then pair them up.
        let task_stubs: Vec<usize> = (0..tasks)
            .flat_map(|t| std::iter::repeat_n(t, workers_per_task))
            .collect();
        let mut worker_stubs: Vec<usize> = (0..workers)
            .flat_map(|w| std::iter::repeat_n(w, tasks_per_worker))
            .collect();
        worker_stubs.shuffle(rng);

        let mut edges: Vec<(usize, usize)> = task_stubs.into_iter().zip(worker_stubs).collect();

        // Repair duplicate (task, worker) pairs by swapping the worker
        // endpoint with a random other edge; a bounded number of sweeps
        // suffices for the sparse graphs we draw.
        for _ in 0..100 {
            let mut seen = std::collections::HashSet::with_capacity(edges.len());
            let mut duplicate_at: Option<usize> = None;
            for (i, e) in edges.iter().enumerate() {
                if !seen.insert(*e) {
                    duplicate_at = Some(i);
                    break;
                }
            }
            let Some(i) = duplicate_at else {
                return Ok(Self::from_edges(tasks, workers, edges));
            };
            let j = rng.random_range(0..edges.len());
            let wi = edges[i].1;
            edges[i].1 = edges[j].1;
            edges[j].1 = wi;
        }
        Err(CrowdError::InvalidGraph(
            "failed to remove duplicate edges".to_string(),
        ))
    }

    fn from_edges(tasks: usize, workers: usize, edges: Vec<(usize, usize)>) -> Self {
        let mut task_edges = vec![Vec::new(); tasks];
        let mut worker_edges = vec![Vec::new(); workers];
        for (e, &(t, w)) in edges.iter().enumerate() {
            task_edges[t].push(e);
            worker_edges[w].push(e);
        }
        BipartiteAssignment {
            tasks,
            workers,
            edges,
            task_edges,
            worker_edges,
        }
    }

    /// Builds a graph from an explicit edge list (used by the
    /// middleware, whose assignments are driven by vehicle routes rather
    /// than drawn at random).
    ///
    /// # Errors
    ///
    /// Returns [`CrowdError::InvalidGraph`] for out-of-range endpoints
    /// or duplicate edges.
    pub fn from_edge_list(
        tasks: usize,
        workers: usize,
        edges: Vec<(usize, usize)>,
    ) -> Result<Self> {
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        for &(t, w) in &edges {
            if t >= tasks || w >= workers {
                return Err(CrowdError::InvalidGraph(format!(
                    "edge ({t}, {w}) out of range"
                )));
            }
            if !seen.insert((t, w)) {
                return Err(CrowdError::InvalidGraph(format!(
                    "duplicate edge ({t}, {w})"
                )));
            }
        }
        Ok(Self::from_edges(tasks, workers, edges))
    }

    /// Number of tasks `N`.
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Number of workers `M`.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The canonical edge list `(task, worker)`.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Edge indices incident to `task` (the set `M_i`).
    pub fn task_edges(&self, task: usize) -> &[usize] {
        &self.task_edges[task]
    }

    /// Edge indices incident to `worker` (the set `N_j`).
    pub fn worker_edges(&self, worker: usize) -> &[usize] {
        &self.worker_edges[worker]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn regular_graph_has_exact_degrees() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = BipartiteAssignment::regular(60, 5, 4, &mut rng).unwrap();
        assert_eq!(g.tasks(), 60);
        assert_eq!(g.workers(), 75);
        assert_eq!(g.edges().len(), 300);
        for t in 0..g.tasks() {
            assert_eq!(g.task_edges(t).len(), 5);
        }
        for w in 0..g.workers() {
            assert_eq!(g.worker_edges(w).len(), 4);
        }
        // No duplicate edges.
        let set: std::collections::HashSet<_> = g.edges().iter().collect();
        assert_eq!(set.len(), g.edges().len());
    }

    #[test]
    fn indivisible_degrees_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert!(matches!(
            BipartiteAssignment::regular(10, 3, 4, &mut rng),
            Err(CrowdError::InvalidGraph(_))
        ));
        assert!(BipartiteAssignment::regular(0, 3, 3, &mut rng).is_err());
        assert!(BipartiteAssignment::regular(10, 0, 1, &mut rng).is_err());
    }

    #[test]
    fn l_larger_than_worker_pool_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // 4 tasks, ℓ=4, γ=8 → workers = 2 < ℓ.
        assert!(BipartiteAssignment::regular(4, 4, 8, &mut rng).is_err());
    }

    #[test]
    fn explicit_edge_list_roundtrip() {
        let g = BipartiteAssignment::from_edge_list(2, 2, vec![(0, 0), (0, 1), (1, 1)]).unwrap();
        assert_eq!(g.task_edges(0), &[0, 1]);
        assert_eq!(g.worker_edges(1), &[1, 2]);
        assert!(BipartiteAssignment::from_edge_list(2, 2, vec![(0, 0), (0, 0)]).is_err());
        assert!(BipartiteAssignment::from_edge_list(2, 2, vec![(2, 0)]).is_err());
    }

    #[test]
    fn many_seeds_produce_valid_graphs() {
        for seed in 0..30 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = BipartiteAssignment::regular(40, 6, 6, &mut rng).unwrap();
            let set: std::collections::HashSet<_> = g.edges().iter().collect();
            assert_eq!(set.len(), g.edges().len(), "seed {seed} has duplicates");
        }
    }
}
