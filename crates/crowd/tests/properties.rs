//! Property-based tests for the crowdsourcing layer.

use crowdwifi_crowd::aggregate::{majority_vote, oracle_vote, skyhook_rank_vote, spearman};
use crowdwifi_crowd::fusion::{fuse_submissions, Submission};
use crowdwifi_crowd::graph::BipartiteAssignment;
use crowdwifi_crowd::inference::IterativeInference;
use crowdwifi_crowd::worker::{SpammerHammerPrior, WorkerPool};
use crowdwifi_crowd::{bit_error_rate, LabelMatrix};
use crowdwifi_geo::Point;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn regular_graphs_have_exact_degrees(
        tasks_base in 4usize..40,
        l in 2usize..6,
        gamma in 2usize..6,
        seed in 0u64..500,
    ) {
        // Force divisibility.
        let tasks = tasks_base * gamma;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        if let Ok(g) = BipartiteAssignment::regular(tasks, l, gamma, &mut rng) {
            for t in 0..g.tasks() {
                prop_assert_eq!(g.task_edges(t).len(), l);
            }
            for w in 0..g.workers() {
                prop_assert_eq!(g.worker_edges(w).len(), gamma);
            }
            let set: std::collections::HashSet<_> = g.edges().iter().collect();
            prop_assert_eq!(set.len(), g.edges().len());
        }
    }

    #[test]
    fn perfect_pool_decodes_perfectly(seed in 0u64..200) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = BipartiteAssignment::regular(40, 3, 3, &mut rng).unwrap();
        let truth: Vec<i8> = (0..40).map(|i| if (i + seed as usize).is_multiple_of(2) { 1 } else { -1 }).collect();
        let pool = WorkerPool::new(vec![1.0; graph.workers()]).unwrap();
        let labels = LabelMatrix::generate(&graph, &truth, &pool, &mut rng);
        // Deterministic init: with adversarial random init and degree-3
        // graphs, KOS can flip an isolated bit even on perfect labels.
        let kos = IterativeInference { random_init: false, ..IterativeInference::default() };
        for decoded in [
            kos.run(&labels, &mut rng).estimates,
            majority_vote(&labels),
            skyhook_rank_vote(&labels),
            oracle_vote(&labels, &pool),
        ] {
            prop_assert_eq!(bit_error_rate(&decoded, &truth), 0.0);
        }
    }

    #[test]
    fn estimates_are_always_plus_minus_one(seed in 0u64..200) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = BipartiteAssignment::regular(30, 3, 3, &mut rng).unwrap();
        let truth = vec![1i8; 30];
        let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
        let labels = LabelMatrix::generate(&graph, &truth, &pool, &mut rng);
        let result = IterativeInference::default().run(&labels, &mut rng);
        prop_assert!(result.estimates.iter().all(|&z| z == 1 || z == -1));
        prop_assert!(result.worker_scores.iter().all(|s| s.is_finite()));
        for r in result.reliability_estimates() {
            prop_assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn spearman_bounds_and_symmetry(
        xs in proptest::collection::vec(-10.0..10.0f64, 3..12),
        ys_seed in proptest::collection::vec(-10.0..10.0f64, 12),
    ) {
        let ys = &ys_seed[..xs.len()];
        let r = spearman(&xs, ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        prop_assert!((spearman(ys, &xs) - r).abs() < 1e-9);
        // Perfect self correlation unless constant.
        if xs.iter().any(|&x| x != xs[0]) {
            prop_assert!((spearman(&xs, &xs) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fusion_support_is_conserved(
        positions in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..15),
        reliability in 0.1..1.0f64,
        merge_radius in 0.0..30.0f64,
    ) {
        let subs: Vec<Submission> = positions
            .iter()
            .map(|&(x, y)| Submission::new(vec![Point::new(x, y)], reliability))
            .collect();
        let fused = fuse_submissions(&subs, merge_radius, 0.0, 0.0);
        let total: f64 = fused.iter().map(|f| f.support).sum();
        prop_assert!((total - reliability * positions.len() as f64).abs() < 1e-9);
        prop_assert!(fused.len() <= positions.len());
        let contributors: usize = fused.iter().map(|f| f.contributors).sum();
        prop_assert_eq!(contributors, positions.len());
    }

    #[test]
    fn oracle_never_loses_to_majority_on_average(seed in 0u64..30) {
        // Single instances can tie or flip; check a small average.
        let mut oracle_sum = 0.0;
        let mut mv_sum = 0.0;
        for trial in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed * 31 + trial);
            let graph = BipartiteAssignment::regular(100, 5, 5, &mut rng).unwrap();
            let truth: Vec<i8> = (0..100).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
            let pool = SpammerHammerPrior::default().draw_pool(graph.workers(), &mut rng);
            let labels = LabelMatrix::generate(&graph, &truth, &pool, &mut rng);
            oracle_sum += bit_error_rate(&oracle_vote(&labels, &pool), &truth);
            mv_sum += bit_error_rate(&majority_vote(&labels), &truth);
        }
        prop_assert!(oracle_sum <= mv_sum + 1e-9);
    }
}
