//! Axis-aligned rectangles.

use crate::point::Point;
use crate::{GeoError, Result};
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
///
/// Used for driving-area bounds (§4.3.1: the sensing rectangle is the
/// bounding box of the reference points expanded by the radio range).
///
/// # Example
///
/// ```
/// use crowdwifi_geo::{Point, Rect};
///
/// let pts = [Point::new(2.0, 3.0), Point::new(8.0, 1.0)];
/// let r = Rect::bounding(&pts).unwrap().expanded(10.0);
/// assert!(r.contains(Point::new(0.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from its corner points.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidRect`] unless `min ≤ max` component-wise
    /// and [`GeoError::NonFinite`] for non-finite corners.
    pub fn new(min: Point, max: Point) -> Result<Self> {
        if !min.is_finite() || !max.is_finite() {
            return Err(GeoError::NonFinite);
        }
        if min.x > max.x || min.y > max.y {
            return Err(GeoError::InvalidRect { min, max });
        }
        Ok(Rect { min, max })
    }

    /// The bounding box of a non-empty point set; `None` when empty.
    pub fn bounding(points: &[Point]) -> Option<Self> {
        let first = *points.first()?;
        let mut min = first;
        let mut max = first;
        for p in points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        Some(Rect { min, max })
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width in meters.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in meters.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center point.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Rectangle grown by `margin` meters on every side — the paper's
    /// `(x_min − r_m, y_min − r_m)…(x_max + r_m, y_max + r_m)` expansion
    /// by the communication radius `r_m`.
    ///
    /// # Panics
    ///
    /// Panics if the margin is so negative the rectangle would invert.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect::new(
            Point::new(self.min.x - margin, self.min.y - margin),
            Point::new(self.max.x + margin, self.max.y + margin),
        )
        .expect("margin inverted rectangle")
    }

    /// Area in square meters.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Intersection with `other`; `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let min = Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y));
        let max = Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y));
        if min.x <= max.x && min.y <= max.y {
            Some(Rect { min, max })
        } else {
            None
        }
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Clamps `p` into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_corner_order() {
        assert!(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).is_ok());
        assert!(matches!(
            Rect::new(Point::new(2.0, 0.0), Point::new(1.0, 1.0)),
            Err(GeoError::InvalidRect { .. })
        ));
        assert!(matches!(
            Rect::new(Point::new(f64::NAN, 0.0), Point::new(1.0, 1.0)),
            Err(GeoError::NonFinite)
        ));
    }

    #[test]
    fn bounding_box_of_points() {
        let pts = [
            Point::new(3.0, -1.0),
            Point::new(-2.0, 4.0),
            Point::new(1.0, 1.0),
        ];
        let r = Rect::bounding(&pts).unwrap();
        assert_eq!(r.min(), Point::new(-2.0, -1.0));
        assert_eq!(r.max(), Point::new(3.0, 4.0));
        assert!(Rect::bounding(&[]).is_none());
    }

    #[test]
    fn degenerate_rect_allowed() {
        let r = Rect::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0)).unwrap();
        assert_eq!(r.width(), 0.0);
        assert!(r.contains(Point::new(1.0, 1.0)));
    }

    #[test]
    fn expansion_grows_all_sides() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0))
            .unwrap()
            .expanded(1.0);
        assert_eq!(r.min(), Point::new(-1.0, -1.0));
        assert_eq!(r.max(), Point::new(3.0, 3.0));
    }

    #[test]
    fn clamp_moves_outside_point_to_boundary() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)).unwrap();
        assert_eq!(r.clamp(Point::new(-5.0, 1.0)), Point::new(0.0, 1.0));
        assert_eq!(r.clamp(Point::new(1.0, 9.0)), Point::new(1.0, 2.0));
    }

    #[test]
    fn area_intersection_union() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0)).unwrap();
        let b = Rect::new(Point::new(2.0, 2.0), Point::new(6.0, 6.0)).unwrap();
        assert_eq!(a.area(), 16.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.min(), Point::new(2.0, 2.0));
        assert_eq!(i.max(), Point::new(4.0, 4.0));
        let u = a.union(&b);
        assert_eq!(u.min(), Point::new(0.0, 0.0));
        assert_eq!(u.max(), Point::new(6.0, 6.0));
        // Disjoint rectangles do not intersect.
        let far = Rect::new(Point::new(10.0, 10.0), Point::new(11.0, 11.0)).unwrap();
        assert!(a.intersection(&far).is_none());
        // Touching edges count as a degenerate intersection.
        let touch = Rect::new(Point::new(4.0, 0.0), Point::new(8.0, 4.0)).unwrap();
        assert_eq!(a.intersection(&touch).unwrap().area(), 0.0);
    }

    #[test]
    fn center_and_dims() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0)).unwrap();
        assert_eq!(r.center(), Point::new(2.0, 1.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 2.0);
    }
}
