//! Timed vehicle trajectories.
//!
//! Crowd-vehicles drive piecewise-linear routes; the simulator samples
//! positions along a [`Trajectory`] at RSS-collection instants.

use crate::point::Point;
use crate::{GeoError, Result};
use serde::{Deserialize, Serialize};

/// A timestamped position on a route.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waypoint {
    /// Position in meters.
    pub position: Point,
    /// Time in seconds since the start of the drive.
    pub time: f64,
}

impl Waypoint {
    /// Creates a waypoint.
    pub fn new(position: Point, time: f64) -> Self {
        Waypoint { position, time }
    }
}

/// A piecewise-linear, time-parameterized vehicle path.
///
/// # Example
///
/// ```
/// use crowdwifi_geo::{Point, Trajectory, Waypoint};
///
/// let t = Trajectory::new(vec![
///     Waypoint::new(Point::new(0.0, 0.0), 0.0),
///     Waypoint::new(Point::new(100.0, 0.0), 10.0),
/// ])?;
/// assert_eq!(t.position_at(5.0), Point::new(50.0, 0.0));
/// # Ok::<(), crowdwifi_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    waypoints: Vec<Waypoint>,
}

impl Trajectory {
    /// Creates a trajectory from at least two waypoints with strictly
    /// increasing times.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidTrajectory`] for fewer than two
    /// waypoints or non-increasing times, and [`GeoError::NonFinite`] for
    /// non-finite coordinates/times.
    pub fn new(waypoints: Vec<Waypoint>) -> Result<Self> {
        if waypoints.len() < 2 {
            return Err(GeoError::InvalidTrajectory(
                "need at least two waypoints".to_string(),
            ));
        }
        for w in &waypoints {
            if !w.position.is_finite() || !w.time.is_finite() {
                return Err(GeoError::NonFinite);
            }
        }
        for pair in waypoints.windows(2) {
            if pair[1].time <= pair[0].time {
                return Err(GeoError::InvalidTrajectory(format!(
                    "times must strictly increase ({} then {})",
                    pair[0].time, pair[1].time
                )));
            }
        }
        Ok(Trajectory { waypoints })
    }

    /// Builds a constant-speed trajectory through `path` at `speed_mps`
    /// meters/second starting at time 0.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidTrajectory`] for fewer than two points,
    /// non-positive speed, or zero-length legs.
    pub fn with_constant_speed(path: &[Point], speed_mps: f64) -> Result<Self> {
        if path.len() < 2 {
            return Err(GeoError::InvalidTrajectory(
                "need at least two path points".to_string(),
            ));
        }
        if !(speed_mps > 0.0) || !speed_mps.is_finite() {
            return Err(GeoError::InvalidTrajectory(format!(
                "speed must be positive, got {speed_mps}"
            )));
        }
        let mut t = 0.0;
        let mut waypoints = vec![Waypoint::new(path[0], 0.0)];
        for pair in path.windows(2) {
            let d = pair[0].distance(pair[1]);
            if d == 0.0 {
                return Err(GeoError::InvalidTrajectory(
                    "zero-length leg in path".to_string(),
                ));
            }
            t += d / speed_mps;
            waypoints.push(Waypoint::new(pair[1], t));
        }
        Trajectory::new(waypoints)
    }

    /// The waypoints, in time order.
    pub fn waypoints(&self) -> &[Waypoint] {
        &self.waypoints
    }

    /// Start time of the drive.
    pub fn start_time(&self) -> f64 {
        self.waypoints[0].time
    }

    /// End time of the drive.
    pub fn end_time(&self) -> f64 {
        self.waypoints[self.waypoints.len() - 1].time
    }

    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end_time() - self.start_time()
    }

    /// Total path length in meters.
    pub fn length(&self) -> f64 {
        self.waypoints
            .windows(2)
            .map(|w| w[0].position.distance(w[1].position))
            .sum()
    }

    /// Position at time `t`, clamped to the trajectory's time span.
    pub fn position_at(&self, t: f64) -> Point {
        if t <= self.start_time() {
            return self.waypoints[0].position;
        }
        if t >= self.end_time() {
            return self.waypoints[self.waypoints.len() - 1].position;
        }
        // Binary search for the segment containing t.
        let idx = self
            .waypoints
            .partition_point(|w| w.time <= t)
            .saturating_sub(1);
        let a = self.waypoints[idx];
        let b = self.waypoints[idx + 1];
        let frac = (t - a.time) / (b.time - a.time);
        a.position.lerp(b.position, frac)
    }

    /// Samples positions at a fixed `interval` (seconds) over the whole
    /// drive, including the start instant.
    pub fn sample(&self, interval: f64) -> Vec<Waypoint> {
        assert!(interval > 0.0, "sampling interval must be positive");
        let mut out = Vec::new();
        let mut t = self.start_time();
        while t <= self.end_time() + 1e-9 {
            out.push(Waypoint::new(self.position_at(t), t));
            t += interval;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight() -> Trajectory {
        Trajectory::new(vec![
            Waypoint::new(Point::new(0.0, 0.0), 0.0),
            Waypoint::new(Point::new(100.0, 0.0), 10.0),
            Waypoint::new(Point::new(100.0, 50.0), 15.0),
        ])
        .unwrap()
    }

    #[test]
    fn validation_rules() {
        assert!(Trajectory::new(vec![]).is_err());
        assert!(Trajectory::new(vec![Waypoint::new(Point::new(0.0, 0.0), 0.0)]).is_err());
        assert!(Trajectory::new(vec![
            Waypoint::new(Point::new(0.0, 0.0), 5.0),
            Waypoint::new(Point::new(1.0, 0.0), 5.0),
        ])
        .is_err());
    }

    #[test]
    fn interpolation_and_clamping() {
        let t = straight();
        assert_eq!(t.position_at(-1.0), Point::new(0.0, 0.0));
        assert_eq!(t.position_at(5.0), Point::new(50.0, 0.0));
        assert_eq!(t.position_at(12.5), Point::new(100.0, 25.0));
        assert_eq!(t.position_at(99.0), Point::new(100.0, 50.0));
    }

    #[test]
    fn length_and_duration() {
        let t = straight();
        assert!((t.length() - 150.0).abs() < 1e-12);
        assert!((t.duration() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn constant_speed_construction() {
        // 45 mph ≈ 20.1168 m/s.
        let mph45 = 45.0 * 0.44704;
        let t = Trajectory::with_constant_speed(
            &[Point::new(0.0, 0.0), Point::new(201.168, 0.0)],
            mph45,
        )
        .unwrap();
        assert!((t.duration() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn constant_speed_rejects_bad_input() {
        let p = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        assert!(Trajectory::with_constant_speed(&p, 0.0).is_err());
        assert!(Trajectory::with_constant_speed(&p[..1], 1.0).is_err());
        let dup = [Point::new(0.0, 0.0), Point::new(0.0, 0.0)];
        assert!(Trajectory::with_constant_speed(&dup, 1.0).is_err());
    }

    #[test]
    fn sampling_covers_span() {
        let t = straight();
        let samples = t.sample(1.0);
        assert_eq!(samples.len(), 16); // t = 0..=15
        assert_eq!(samples[0].position, Point::new(0.0, 0.0));
        assert_eq!(samples[15].position, Point::new(100.0, 50.0));
    }
}
