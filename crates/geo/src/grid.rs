//! The driving grid: a lattice of candidate AP positions.
//!
//! §4.3.1 of the paper forms a grid over the driving area; every lattice
//! point is a candidate AP location and the sparse vector `θ` indexes
//! them. [`Grid`] owns the index ↔ coordinate mapping used everywhere.

use crate::point::Point;
use crate::rect::Rect;
use crate::{GeoError, Result};
use serde::{Deserialize, Serialize};

/// A regular lattice over a rectangular driving area.
///
/// Grid points sit at the lattice *centers*: index `(i, j)` maps to
/// `min + (i + ½, j + ½)·ℓ`. Linear indices run row-major (x fastest).
///
/// # Example
///
/// ```
/// use crowdwifi_geo::{Grid, Point, Rect};
///
/// let area = Rect::new(Point::new(0.0, 0.0), Point::new(16.0, 8.0))?;
/// let grid = Grid::new(area, 8.0)?;
/// assert_eq!(grid.len(), 2); // 2 × 1 lattice cells
/// assert_eq!(grid.point(0), Point::new(4.0, 4.0));
/// # Ok::<(), crowdwifi_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    bounds: Rect,
    lattice: f64,
    nx: usize,
    ny: usize,
}

impl Grid {
    /// Creates a grid over `bounds` with lattice edge length `lattice`.
    ///
    /// At least one cell is created per axis even when the bounds are
    /// smaller than one lattice cell.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLattice`] unless `lattice` is positive
    /// and finite.
    pub fn new(bounds: Rect, lattice: f64) -> Result<Self> {
        if !(lattice > 0.0) || !lattice.is_finite() {
            return Err(GeoError::InvalidLattice(lattice));
        }
        let nx = ((bounds.width() / lattice).ceil() as usize).max(1);
        let ny = ((bounds.height() / lattice).ceil() as usize).max(1);
        Ok(Grid {
            bounds,
            lattice,
            nx,
            ny,
        })
    }

    /// Grid formation of §4.3.1: bounding box of the reference points
    /// expanded by the radio range `radio_range`, with the given lattice.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidTrajectory`] when `reference_points` is
    /// empty, or lattice validation errors.
    pub fn from_reference_points(
        reference_points: &[Point],
        radio_range: f64,
        lattice: f64,
    ) -> Result<Self> {
        let bbox = Rect::bounding(reference_points).ok_or_else(|| {
            GeoError::InvalidTrajectory("no reference points for grid formation".to_string())
        })?;
        Grid::new(bbox.expanded(radio_range.max(0.0)), lattice)
    }

    /// The covered area.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Lattice edge length in meters.
    pub fn lattice(&self) -> f64 {
        self.lattice
    }

    /// Number of columns (x direction).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows (y direction).
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of grid points `N = nx · ny`.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the grid has no points (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinate of linear index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn point(&self, idx: usize) -> Point {
        assert!(idx < self.len(), "grid index out of bounds");
        let i = idx % self.nx;
        let j = idx / self.nx;
        Point::new(
            self.bounds.min().x + (i as f64 + 0.5) * self.lattice,
            self.bounds.min().y + (j as f64 + 0.5) * self.lattice,
        )
    }

    /// Linear index of the grid point nearest to `p` (clamped into the
    /// grid for outside points).
    pub fn nearest_index(&self, p: Point) -> usize {
        let clamped = self.bounds.clamp(p);
        let i =
            (((clamped.x - self.bounds.min().x) / self.lattice).floor() as usize).min(self.nx - 1);
        let j =
            (((clamped.y - self.bounds.min().y) / self.lattice).floor() as usize).min(self.ny - 1);
        j * self.nx + i
    }

    /// Iterates over all grid points in linear-index order.
    pub fn iter(&self) -> GridIter<'_> {
        GridIter { grid: self, idx: 0 }
    }

    /// The grid diagonal of one lattice cell (`ℓ√2`) — the paper's "grid
    /// diameter" used to normalize localization error.
    pub fn cell_diagonal(&self) -> f64 {
        self.lattice * std::f64::consts::SQRT_2
    }
}

/// Iterator over grid points; see [`Grid::iter`].
#[derive(Debug)]
pub struct GridIter<'a> {
    grid: &'a Grid,
    idx: usize,
}

impl Iterator for GridIter<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.idx >= self.grid.len() {
            return None;
        }
        let p = self.grid.point(self.idx);
        self.idx += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.grid.len() - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for GridIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(w: f64, h: f64) -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(w, h)).unwrap()
    }

    #[test]
    fn cell_counts_round_up() {
        let g = Grid::new(rect(17.0, 8.0), 8.0).unwrap();
        assert_eq!((g.nx(), g.ny()), (3, 1));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn tiny_bounds_still_have_one_cell() {
        let g = Grid::new(rect(0.0, 0.0), 5.0).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.point(0), Point::new(2.5, 2.5));
    }

    #[test]
    fn index_point_roundtrip() {
        let g = Grid::new(rect(40.0, 24.0), 8.0).unwrap();
        for idx in 0..g.len() {
            assert_eq!(g.nearest_index(g.point(idx)), idx);
        }
    }

    #[test]
    fn nearest_index_clamps_outside_points() {
        let g = Grid::new(rect(16.0, 16.0), 8.0).unwrap();
        assert_eq!(g.nearest_index(Point::new(-100.0, -100.0)), 0);
        assert_eq!(g.nearest_index(Point::new(100.0, 100.0)), g.len() - 1);
    }

    #[test]
    fn from_reference_points_expands_by_range() {
        let rps = [Point::new(10.0, 10.0), Point::new(20.0, 12.0)];
        let g = Grid::from_reference_points(&rps, 30.0, 10.0).unwrap();
        assert!(g.bounds().contains(Point::new(-15.0, -15.0)));
        assert!(g.bounds().contains(Point::new(45.0, 40.0)));
        assert!(Grid::from_reference_points(&[], 30.0, 10.0).is_err());
    }

    #[test]
    fn iterator_yields_all_points() {
        let g = Grid::new(rect(24.0, 16.0), 8.0).unwrap();
        let pts: Vec<Point> = g.iter().collect();
        assert_eq!(pts.len(), g.len());
        assert_eq!(pts[0], g.point(0));
        assert_eq!(pts[pts.len() - 1], g.point(g.len() - 1));
    }

    #[test]
    fn rejects_bad_lattice() {
        assert!(Grid::new(rect(1.0, 1.0), 0.0).is_err());
        assert!(Grid::new(rect(1.0, 1.0), -2.0).is_err());
        assert!(Grid::new(rect(1.0, 1.0), f64::INFINITY).is_err());
    }

    #[test]
    fn cell_diagonal_value() {
        let g = Grid::new(rect(8.0, 8.0), 8.0).unwrap();
        assert!((g.cell_diagonal() - 8.0 * 2.0_f64.sqrt()).abs() < 1e-12);
    }
}
