//! Planar points in a local east-north frame (meters).

use serde::{Deserialize, Serialize};

/// A position in meters within the local driving area.
///
/// # Example
///
/// ```
/// use crowdwifi_geo::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East coordinate in meters.
    pub x: f64,
    /// North coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from `x`/`y` in meters.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Whether both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Linear interpolation: `self + t · (other − self)`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// Unweighted centroid of a non-empty point set; `None` when empty.
pub fn centroid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let n = points.len() as f64;
    let (sx, sy) = points
        .iter()
        .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
    Some(Point::new(sx / n, sy / n))
}

/// Weighted centroid `Σ wᵢ pᵢ / Σ wᵢ` — the Eq. (3) estimator of the
/// paper. Returns `None` when the points are empty, the lengths differ or
/// the total weight is not positive.
pub fn weighted_centroid(points: &[Point], weights: &[f64]) -> Option<Point> {
    if points.is_empty() || points.len() != weights.len() {
        return None;
    }
    let total: f64 = weights.iter().sum();
    if !(total > 0.0) || !total.is_finite() {
        return None;
    }
    let (sx, sy) = points
        .iter()
        .zip(weights)
        .fold((0.0, 0.0), |(sx, sy), (p, &w)| (sx + w * p.x, sy + w * p.y));
    Some(Point::new(sx / total, sy / total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_symmetry_and_identity() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert_eq!(centroid(&pts), Some(Point::new(1.0, 1.0)));
        assert_eq!(centroid(&[]), None);
    }

    #[test]
    fn weighted_centroid_pulls_toward_heavy_point() {
        let pts = [Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let c = weighted_centroid(&pts, &[1.0, 3.0]).unwrap();
        assert!((c.x - 7.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_centroid_rejects_bad_inputs() {
        let pts = [Point::new(0.0, 0.0)];
        assert_eq!(weighted_centroid(&pts, &[]), None);
        assert_eq!(weighted_centroid(&pts, &[0.0]), None);
        assert_eq!(weighted_centroid(&pts, &[-1.0]), None);
        assert_eq!(weighted_centroid(&[], &[]), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1.00, 2.50)");
    }
}
