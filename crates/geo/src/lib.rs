//! Geometry substrate: points, rectangles, driving grids and trajectories.
//!
//! CrowdWiFi discretizes the driving area into a lattice of grid points
//! (§4.3.1) and formulates AP lookup as sparse recovery over those
//! points. This crate provides the spatial vocabulary shared by the whole
//! stack:
//!
//! * [`Point`] — planar position in meters (local ENU frame),
//! * [`Rect`] — axis-aligned bounding boxes,
//! * [`Grid`] — the driving grid with index ↔ coordinate mapping,
//! * [`Trajectory`] — timed vehicle paths that the simulator samples.
//!
//! # Example
//!
//! ```
//! use crowdwifi_geo::{Grid, Point, Rect};
//!
//! let area = Rect::new(Point::new(0.0, 0.0), Point::new(80.0, 40.0))?;
//! let grid = Grid::new(area, 8.0)?;
//! let gp = grid.nearest_index(Point::new(33.0, 17.0));
//! assert!(grid.point(gp).distance(Point::new(33.0, 17.0)) <= 8.0);
//! # Ok::<(), crowdwifi_geo::GeoError>(())
//! ```

#![deny(missing_docs)]
// `!(x > 0.0)` style guards are used deliberately throughout: unlike
// `x <= 0.0`, they also reject NaN, which is exactly what parameter
// validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod grid;
pub mod point;
pub mod rect;
pub mod trajectory;

pub use grid::Grid;
pub use point::Point;
pub use rect::Rect;
pub use trajectory::{Trajectory, Waypoint};

/// Errors produced by geometric constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// Rectangle corners are not ordered `min ≤ max` component-wise.
    InvalidRect {
        /// Offending minimum corner.
        min: Point,
        /// Offending maximum corner.
        max: Point,
    },
    /// Lattice length must be positive and finite.
    InvalidLattice(f64),
    /// A trajectory needs at least two waypoints with increasing times.
    InvalidTrajectory(String),
    /// Coordinates must be finite.
    NonFinite,
}

impl std::fmt::Display for GeoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeoError::InvalidRect { min, max } => {
                write!(f, "invalid rectangle corners: min {min}, max {max}")
            }
            GeoError::InvalidLattice(l) => write!(f, "invalid lattice length {l}"),
            GeoError::InvalidTrajectory(why) => write!(f, "invalid trajectory: {why}"),
            GeoError::NonFinite => write!(f, "non-finite coordinate"),
        }
    }
}

impl std::error::Error for GeoError {}

/// Convenience alias for geometry results.
pub type Result<T> = std::result::Result<T, GeoError>;
