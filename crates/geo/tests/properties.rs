//! Property-based tests for the geometry substrate.

use crowdwifi_geo::point::{centroid, weighted_centroid};
use crowdwifi_geo::{Grid, Point, Rect, Trajectory, Waypoint};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    (-1000.0..1000.0f64).prop_map(|x| (x * 8.0).round() / 8.0)
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn distance_is_a_metric(a in point(), b in point(), c in point()) {
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        prop_assert!(a.distance(a) < 1e-12);
        // Triangle inequality.
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn lerp_stays_on_segment(a in point(), b in point(), t in 0.0..1.0f64) {
        let p = a.lerp(b, t);
        let d = a.distance(p) + p.distance(b);
        prop_assert!((d - a.distance(b)).abs() < 1e-6);
    }

    #[test]
    fn centroid_lies_in_bounding_box(pts in proptest::collection::vec(point(), 1..20)) {
        let c = centroid(&pts).unwrap();
        let bbox = Rect::bounding(&pts).unwrap();
        prop_assert!(bbox.contains(c));
    }

    #[test]
    fn weighted_centroid_in_convex_hull_bbox(
        pts in proptest::collection::vec(point(), 1..10),
        raw_weights in proptest::collection::vec(0.1..10.0f64, 10),
    ) {
        let weights = &raw_weights[..pts.len()];
        let c = weighted_centroid(&pts, weights).unwrap();
        let bbox = Rect::bounding(&pts).unwrap();
        prop_assert!(bbox.expanded(1e-9).contains(c));
    }

    #[test]
    fn grid_index_roundtrip(
        w in 10.0..500.0f64,
        h in 10.0..500.0f64,
        lattice in 1.0..40.0f64,
    ) {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(w, h)).unwrap();
        let grid = Grid::new(area, lattice).unwrap();
        // Every grid point maps back to its own index.
        for idx in (0..grid.len()).step_by((grid.len() / 16).max(1)) {
            prop_assert_eq!(grid.nearest_index(grid.point(idx)), idx);
        }
    }

    #[test]
    fn nearest_grid_point_is_within_half_diagonal(
        w in 20.0..300.0f64,
        h in 20.0..300.0f64,
        lattice in 2.0..30.0f64,
        fx in 0.0..1.0f64,
        fy in 0.0..1.0f64,
    ) {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(w, h)).unwrap();
        let grid = Grid::new(area, lattice).unwrap();
        let p = Point::new(w * fx, h * fy);
        let snapped = grid.point(grid.nearest_index(p));
        // Inside the area, the nearest lattice center is within one
        // half-diagonal of a cell.
        prop_assert!(snapped.distance(p) <= grid.cell_diagonal() / 2.0 + 1e-9);
    }

    #[test]
    fn trajectory_positions_interpolate_monotonically(
        speed in 1.0..40.0f64,
        n in 2usize..8,
    ) {
        let path: Vec<Point> = (0..n).map(|i| Point::new(50.0 * i as f64, 0.0)).collect();
        let t = Trajectory::with_constant_speed(&path, speed).unwrap();
        // x must be non-decreasing along this eastbound path.
        let mut prev = f64::NEG_INFINITY;
        for w in t.sample(t.duration() / 20.0) {
            prop_assert!(w.position.x >= prev - 1e-9);
            prev = w.position.x;
        }
        // Length and duration are consistent with the speed.
        prop_assert!((t.length() / t.duration() - speed).abs() < 1e-6);
    }

    #[test]
    fn waypoint_trajectory_respects_endpoints(times in proptest::collection::vec(0.1..10.0f64, 2..6)) {
        // Build strictly increasing times from positive gaps.
        let mut t_acc = 0.0;
        let waypoints: Vec<Waypoint> = times
            .iter()
            .enumerate()
            .map(|(i, &dt)| {
                t_acc += dt;
                Waypoint::new(Point::new(i as f64 * 10.0, 0.0), t_acc)
            })
            .collect();
        let traj = Trajectory::new(waypoints.clone()).unwrap();
        prop_assert_eq!(traj.position_at(traj.start_time()), waypoints[0].position);
        prop_assert_eq!(
            traj.position_at(traj.end_time()),
            waypoints[waypoints.len() - 1].position
        );
    }
}
