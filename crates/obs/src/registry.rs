//! The metric registry and its recording handles.

use crate::event::{EventBuffer, EventValue};
use crate::snapshot::{HistogramSnapshot, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Environment variable that enables the [`global`] registry at first
/// use when set to `1` (any other value leaves it disabled).
pub const OBS_ENV: &str = "CROWDWIFI_OBS";

/// Maximum structured events a registry retains (older events are
/// dropped, counted in [`Snapshot::events_dropped`]).
const EVENT_CAP: usize = 256;

/// Scale factor turning histogram observations into the integer
/// micro-units their sums accumulate in. Integer accumulation keeps
/// concurrent sums exactly commutative (float addition is not
/// associative, so a float sum would depend on thread interleaving).
const MICRO: f64 = 1e6;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shared state behind a [`Registry`] and all handles minted from it.
#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    /// Gauges store an `i64` value as its two's-complement bits.
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
    events: Mutex<EventBuffer>,
}

/// Atomic storage of one histogram: per-bucket counts plus the total
/// count and the micro-unit sum.
#[derive(Debug)]
struct HistogramCell {
    /// Strictly increasing, finite upper bucket bounds; observations
    /// land in the first bucket whose bound is `>=` the value, or in
    /// the implicit overflow bucket.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets (the last is the overflow bucket).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micro: AtomicU64,
    /// Whether this histogram records wall-clock durations (stripped by
    /// [`Snapshot::deterministic`]).
    timing: bool,
}

impl HistogramCell {
    fn new(bounds: &[f64], timing: bool) -> Self {
        let bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        HistogramCell {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_micro: AtomicU64::new(0),
            timing,
        }
    }

    #[cfg_attr(not(feature = "record"), allow(dead_code))]
    fn observe(&self, value: f64) {
        // Negative and NaN observations clamp to zero: metrics here are
        // counts and durations, for which below-zero has no meaning.
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap on pathological magnitudes.
        let micro = (v * MICRO).round().min(u64::MAX as f64) as u64;
        self.sum_micro.fetch_add(micro, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum_micro.load(Ordering::Relaxed) as f64 / MICRO,
            timing: self.timing,
        }
    }
}

/// A process- or scope-wide set of named metrics and events.
///
/// Cloning a `Registry` clones a cheap handle to the same underlying
/// metrics; handles minted from any clone record into the shared state.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    fn with_enabled(enabled: bool) -> Self {
        Registry {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                events: Mutex::new(EventBuffer::new(EVENT_CAP)),
            }),
        }
    }

    /// Creates an enabled registry.
    pub fn new() -> Self {
        Registry::with_enabled(true)
    }

    /// Creates a disabled registry: every recording call through its
    /// handles is a single relaxed load (the no-op recorder).
    pub fn disabled() -> Self {
        Registry::with_enabled(false)
    }

    /// Turns recording on or off for every handle of this registry.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether handles of this registry currently record.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or looks up) a counter. The same name always yields a
    /// handle to the same underlying cell.
    pub fn counter(&self, name: &str) -> Counter {
        let cell = lock(&self.inner.counters)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter {
            inner: self.inner.clone(),
            cell,
        }
    }

    /// Registers (or looks up) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let cell = lock(&self.inner.gauges)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Gauge {
            inner: self.inner.clone(),
            cell,
        }
    }

    /// Registers (or looks up) a histogram with fixed bucket `bounds`
    /// (strictly increasing; non-finite entries are dropped). On a name
    /// collision the first registration's bounds win.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histogram_kind(name, bounds, false)
    }

    /// Registers (or looks up) a **timing** histogram (bounds in
    /// seconds, default [`crate::LATENCY_BOUNDS_SECS`]). Timing
    /// histograms are stripped by [`Snapshot::deterministic`].
    pub fn timer(&self, name: &str) -> Histogram {
        self.histogram_kind(name, crate::LATENCY_BOUNDS_SECS, true)
    }

    fn histogram_kind(&self, name: &str, bounds: &[f64], timing: bool) -> Histogram {
        let cell = lock(&self.inner.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCell::new(bounds, timing)))
            .clone();
        Histogram {
            inner: self.inner.clone(),
            cell,
        }
    }

    /// Records a structured event. Events carry no wall-clock time, so
    /// a fixed-seed run emits a byte-identical event log.
    pub fn event(&self, name: &str, fields: &[(&str, EventValue)]) {
        #[cfg(feature = "record")]
        {
            if self.is_enabled() {
                lock(&self.inner.events).push(name, fields);
            }
        }
        #[cfg(not(feature = "record"))]
        {
            let _ = (name, fields);
        }
    }

    /// Takes a point-in-time snapshot of every metric and buffered
    /// event. Concurrent recording during the snapshot may or may not
    /// be included (each cell is read atomically, the set is not).
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock(&self.inner.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = lock(&self.inner.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed) as i64))
            .collect();
        let histograms = lock(&self.inner.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let events = lock(&self.inner.events);
        Snapshot {
            counters,
            gauges,
            histograms,
            events: events.events().to_vec(),
            events_dropped: events.dropped(),
        }
    }
}

/// The process-wide default registry. Starts **disabled** unless the
/// `CROWDWIFI_OBS` environment variable is `1` at first use; flip it at
/// runtime with [`Registry::set_enabled`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let enabled = std::env::var(OBS_ENV).is_ok_and(|v| v.trim() == "1");
        Registry::with_enabled(enabled)
    })
}

/// A monotonically increasing `u64` metric.
#[derive(Debug, Clone)]
pub struct Counter {
    #[cfg_attr(not(feature = "record"), allow(dead_code))]
    inner: Arc<Inner>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "record")]
        {
            if self.inner.enabled.load(Ordering::Relaxed) {
                self.cell.fetch_add(n, Ordering::Relaxed);
            }
        }
        #[cfg(not(feature = "record"))]
        {
            let _ = n;
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (fleet size, quorum margin, queue
/// depth).
#[derive(Debug, Clone)]
pub struct Gauge {
    #[cfg_attr(not(feature = "record"), allow(dead_code))]
    inner: Arc<Inner>,
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: i64) {
        #[cfg(feature = "record")]
        {
            if self.inner.enabled.load(Ordering::Relaxed) {
                self.cell.store(value as u64, Ordering::Relaxed);
            }
        }
        #[cfg(not(feature = "record"))]
        {
            let _ = value;
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(feature = "record")]
        {
            if self.inner.enabled.load(Ordering::Relaxed) {
                self.cell.fetch_add(delta as u64, Ordering::Relaxed);
            }
        }
        #[cfg(not(feature = "record"))]
        {
            let _ = delta;
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed) as i64
    }
}

/// A fixed-bucket distribution metric.
#[derive(Debug, Clone)]
pub struct Histogram {
    #[cfg_attr(not(feature = "record"), allow(dead_code))]
    inner: Arc<Inner>,
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        #[cfg(feature = "record")]
        {
            if self.inner.enabled.load(Ordering::Relaxed) {
                self.cell.observe(value);
            }
        }
        #[cfg(not(feature = "record"))]
        {
            let _ = value;
        }
    }

    /// Records a duration in seconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Starts a span-style timer; dropping (or
    /// [`finish`](Span::finish)ing) the returned [`Span`] records the
    /// elapsed seconds here. On a disabled registry the span takes no
    /// clock reading at all.
    pub fn start_span(&self) -> Span {
        #[cfg(feature = "record")]
        {
            let start = if self.inner.enabled.load(Ordering::Relaxed) {
                Some(std::time::Instant::now())
            } else {
                None
            };
            Span {
                hist: self.clone(),
                start,
            }
        }
        #[cfg(not(feature = "record"))]
        {
            Span {}
        }
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }
}

/// A span-style timer tied to a timing [`Histogram`]; see
/// [`Histogram::start_span`].
#[derive(Debug)]
pub struct Span {
    #[cfg(feature = "record")]
    hist: Histogram,
    #[cfg(feature = "record")]
    start: Option<std::time::Instant>,
}

impl Span {
    /// Stops the span, records it, and returns the elapsed duration
    /// (zero when the registry was disabled at span start).
    #[cfg_attr(not(feature = "record"), allow(unused_mut))]
    pub fn finish(mut self) -> std::time::Duration {
        #[cfg(feature = "record")]
        {
            if let Some(start) = self.start.take() {
                let elapsed = start.elapsed();
                self.hist.observe_duration(elapsed);
                return elapsed;
            }
        }
        std::time::Duration::ZERO
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "record")]
        {
            if let Some(start) = self.start.take() {
                self.hist.observe_duration(start.elapsed());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(not(feature = "record"), ignore = "recording compiled out")]
    fn counters_and_gauges_record() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        c.inc();
        c.add(4);
        g.set(-7);
        g.add(2);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), -5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], -5);
    }

    #[test]
    #[cfg_attr(not(feature = "record"), ignore = "recording compiled out")]
    fn same_name_shares_a_cell() {
        let reg = Registry::new();
        reg.counter("shared").inc();
        reg.counter("shared").inc();
        assert_eq!(reg.counter("shared").get(), 2);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::disabled();
        let c = reg.counter("c");
        let h = reg.histogram("h", &[1.0]);
        c.inc();
        h.observe(0.5);
        reg.event("e", &[]);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 0);
        assert_eq!(snap.histograms["h"].count, 0);
        assert!(snap.events.is_empty());
        // Re-enabling makes the same handles live.
        reg.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), if cfg!(feature = "record") { 1 } else { 0 });
    }

    #[test]
    #[cfg_attr(not(feature = "record"), ignore = "recording compiled out")]
    fn histogram_buckets_and_sum() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[1.0, 10.0]);
        h.observe(0.5); // bucket 0
        h.observe(1.0); // bucket 0 (inclusive upper bound)
        h.observe(5.0); // bucket 1
        h.observe(100.0); // overflow bucket
        h.observe(-3.0); // clamps to 0, bucket 0
        let s = reg.snapshot();
        let hs = &s.histograms["h"];
        assert_eq!(hs.buckets, vec![3, 1, 1]);
        assert_eq!(hs.count, 5);
        assert!((hs.sum - 106.5).abs() < 1e-9, "sum {}", hs.sum);
        assert!(!hs.timing);
    }

    #[test]
    #[cfg_attr(not(feature = "record"), ignore = "recording compiled out")]
    fn span_records_into_timing_histogram() {
        let reg = Registry::new();
        let t = reg.timer("t");
        {
            let _span = t.start_span();
        }
        let d = t.start_span().finish();
        let s = reg.snapshot();
        assert_eq!(s.histograms["t"].count, 2);
        assert!(s.histograms["t"].timing);
        assert!(d >= std::time::Duration::ZERO);
    }

    #[test]
    fn span_on_disabled_registry_reads_no_clock() {
        let reg = Registry::disabled();
        let t = reg.timer("t");
        assert_eq!(t.start_span().finish(), std::time::Duration::ZERO);
        assert_eq!(t.count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Registry::new().histogram("bad", &[2.0, 1.0]);
    }

    #[test]
    fn concurrent_recording_totals_are_exact() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[8.0, 64.0]);
        let c = reg.counter("c");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.observe((i % 100) as f64);
                        c.inc();
                    }
                });
            }
        });
        if cfg!(feature = "record") {
            assert_eq!(c.get(), 4000);
            let s = reg.snapshot();
            assert_eq!(s.histograms["h"].count, 4000);
            // Integer micro-unit accumulation: the sum is exact, not
            // merely close, regardless of interleaving.
            let expect = 4.0 * (0..1000).map(|i| (i % 100) as f64).sum::<f64>();
            assert_eq!(s.histograms["h"].sum, expect);
        }
    }
}
