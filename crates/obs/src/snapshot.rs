//! Point-in-time metric snapshots and their deterministic JSON export.

use crate::event::{Event, EventValue};
use std::collections::BTreeMap;

/// A copy of one histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (see [`crate::Registry::histogram`]).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries; the
    /// last is the overflow bucket).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations (accumulated in exact micro-units).
    pub sum: f64,
    /// Whether this histogram records wall-clock durations.
    pub timing: bool,
}

impl HistogramSnapshot {
    /// Mean observation, or `None` with no observations.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// Everything a [`crate::Registry`] held at snapshot time.
///
/// The snapshot is plain data: clone it, embed it in reports, diff it.
/// [`Snapshot::to_json`] renders it deterministically — map keys come
/// from sorted `BTreeMap`s, floats print in plain decimal via Rust's
/// shortest-roundtrip formatter, and nothing carries a timestamp — so
/// two snapshots of identical recording histories serialize to
/// identical bytes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Buffered structured events, oldest first.
    pub events: Vec<Event>,
    /// Events discarded because the buffer was full.
    pub events_dropped: u64,
}

impl Snapshot {
    /// The scheduling-independent projection: drops timing histograms
    /// (wall-clock durations differ run to run even under a fixed
    /// seed). What remains — counters, gauges, value histograms,
    /// events — is byte-identical across same-seed runs of a
    /// deterministic system, which is what the platform round test
    /// asserts.
    pub fn deterministic(&self) -> Snapshot {
        let mut out = self.clone();
        out.histograms.retain(|_, h| !h.timing);
        out
    }

    /// Renders the snapshot as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"counters\": {");
        push_map(&mut s, &self.counters, |s, v| {
            s.push_str(&v.to_string());
        });
        s.push_str("},\n  \"gauges\": {");
        push_map(&mut s, &self.gauges, |s, v| {
            s.push_str(&v.to_string());
        });
        s.push_str("},\n  \"histograms\": {");
        push_map(&mut s, &self.histograms, |s, h| {
            s.push_str("{\"timing\": ");
            s.push_str(if h.timing { "true" } else { "false" });
            s.push_str(", \"bounds\": ");
            push_f64_array(s, &h.bounds);
            s.push_str(", \"buckets\": [");
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&b.to_string());
            }
            s.push_str("], \"count\": ");
            s.push_str(&h.count.to_string());
            s.push_str(", \"sum\": ");
            push_f64(s, h.sum);
            s.push('}');
        });
        s.push_str("},\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\"seq\": ");
            s.push_str(&e.seq.to_string());
            s.push_str(", \"name\": ");
            push_json_string(&mut s, &e.name);
            s.push_str(", \"fields\": {");
            for (j, (k, v)) in e.fields.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                push_json_string(&mut s, k);
                s.push_str(": ");
                match v {
                    EventValue::Int(i) => s.push_str(&i.to_string()),
                    EventValue::Uint(u) => s.push_str(&u.to_string()),
                    EventValue::Float(f) => push_f64(&mut s, *f),
                    EventValue::Str(t) => push_json_string(&mut s, t),
                    EventValue::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
                }
            }
            s.push_str("}}");
        }
        if !self.events.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"events_dropped\": ");
        s.push_str(&self.events_dropped.to_string());
        s.push_str("\n}\n");
        s
    }
}

/// Writes the entries of a sorted map as `"k": <value>` pairs.
fn push_map<V>(s: &mut String, map: &BTreeMap<String, V>, mut value: impl FnMut(&mut String, &V)) {
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    ");
        push_json_string(s, k);
        s.push_str(": ");
        value(s, v);
    }
    if !map.is_empty() {
        s.push_str("\n  ");
    }
}

fn push_f64_array(s: &mut String, values: &[f64]) {
    s.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        push_f64(s, *v);
    }
    s.push(']');
}

/// Formats a finite float as plain-decimal JSON. Rust's `Display` for
/// `f64` emits the shortest decimal that round-trips and never uses
/// exponent notation, so the output is valid JSON and deterministic.
/// Non-finite values (which the registry never produces) map to `null`.
fn push_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        s.push_str(&v.to_string());
    } else {
        s.push_str("null");
    }
}

/// Writes a JSON string literal with the mandatory escapes.
fn push_json_string(s: &mut String, text: &str) {
    s.push('"');
    for c in text.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn empty_snapshot_is_valid_json_shape() {
        let json = Snapshot::default().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"events\": []"));
        assert!(json.contains("\"events_dropped\": 0"));
    }

    #[test]
    #[cfg_attr(not(feature = "record"), ignore = "recording compiled out")]
    fn json_is_deterministic_for_identical_histories() {
        let record = |reg: &Registry| {
            reg.counter("b").add(2);
            reg.counter("a").inc();
            reg.gauge("g").set(-3);
            reg.histogram("h", &[1.0, 2.0]).observe(1.5);
            reg.event(
                "ev",
                &[("id", EventValue::Uint(7)), ("ok", EventValue::Bool(true))],
            );
        };
        let (ra, rb) = (Registry::new(), Registry::new());
        record(&ra);
        record(&rb);
        assert_eq!(ra.snapshot().to_json(), rb.snapshot().to_json());
        // Registration order does not matter: keys are sorted.
        let json = ra.snapshot().to_json();
        let a = json.find("\"a\": 1").expect("counter a");
        let b = json.find("\"b\": 2").expect("counter b");
        assert!(a < b, "keys must serialize sorted");
    }

    #[test]
    #[cfg_attr(not(feature = "record"), ignore = "recording compiled out")]
    fn deterministic_projection_strips_timers_only() {
        let reg = Registry::new();
        reg.histogram("values", &[1.0]).observe(0.5);
        reg.timer("latency").start_span().finish();
        reg.counter("c").inc();
        let full = reg.snapshot();
        assert!(full.histograms.contains_key("latency"));
        let det = full.deterministic();
        assert!(!det.histograms.contains_key("latency"));
        assert!(det.histograms.contains_key("values"));
        assert_eq!(det.counters["c"], 1);
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    #[cfg_attr(not(feature = "record"), ignore = "recording compiled out")]
    fn histogram_mean() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[10.0]);
        assert_eq!(reg.snapshot().histograms["h"].mean(), None);
        h.observe(2.0);
        h.observe(4.0);
        assert_eq!(reg.snapshot().histograms["h"].mean(), Some(3.0));
    }
}
