//! Lightweight observability for the CrowdWiFi workspace.
//!
//! The online-CS pipeline and the crowd platform are concurrent, seeded
//! systems: when something degrades — solver iterations creep up, the
//! group-recovery memo stops hitting, a fleet keeps timing out — the
//! numbers that explain it live deep inside hot loops. This crate is the
//! shared, dependency-free layer those loops record into:
//!
//! * [`Registry`] — a set of named metrics. One **global** process-wide
//!   registry ([`global`]) serves fire-and-forget instrumentation (it
//!   starts disabled; see [`Registry::set_enabled`] and the
//!   [`OBS_ENV`] variable), and local registries serve scoped,
//!   deterministic measurement (e.g. one per platform round).
//! * [`Counter`], [`Gauge`], [`Histogram`] — cheap handles recording
//!   through relaxed atomics. Histograms have **fixed bucket
//!   boundaries** chosen at registration and accumulate their sum in
//!   integer micro-units, so concurrent recording stays exactly
//!   commutative: totals are identical regardless of thread
//!   interleaving.
//! * [`Span`] — a span-style timer started with
//!   [`Histogram::start_span`]; dropping (or [`Span::finish`]ing) it
//!   records the elapsed seconds into its timing histogram.
//! * [`Registry::event`] — a bounded buffer of structured events
//!   (name + typed fields, no wall-clock), for low-rate occurrences
//!   like vehicle deaths that deserve more context than a counter.
//! * [`Snapshot`] — a point-in-time copy of everything, exportable as
//!   **deterministic JSON** ([`Snapshot::to_json`]): keys sorted,
//!   floats in plain decimal, no timestamps. Timing histograms are
//!   inherently run-dependent, so [`Snapshot::deterministic`] strips
//!   them for byte-identical same-seed comparisons.
//!
//! # Overhead contract
//!
//! Recording into an enabled registry is one relaxed flag load plus one
//! or two relaxed atomic read-modify-writes — far below the cost of the
//! solves and channel round-trips it measures (<2% on the end-to-end
//! pipeline; see `BENCH_obs.json`). Recording into a *disabled*
//! registry is the flag load alone. Building with
//! `--no-default-features` (turning off the `record` feature) compiles
//! every recording call to an empty inline function.
//!
//! # Example
//!
//! ```
//! use crowdwifi_obs::Registry;
//!
//! let reg = Registry::new();
//! let windows = reg.counter("pipeline.windows_processed");
//! let k = reg.histogram("pipeline.round_winner_k", &[1.0, 2.0, 4.0, 8.0]);
//! windows.inc();
//! k.observe(2.0);
//! let snap = reg.snapshot();
//! if crowdwifi_obs::RECORDING {
//!     assert_eq!(snap.counters["pipeline.windows_processed"], 1);
//! }
//! assert!(snap.to_json().contains("round_winner_k"));
//! ```

#![deny(missing_docs)]

mod event;
mod registry;
mod snapshot;

pub use event::{Event, EventValue};
pub use registry::{global, Counter, Gauge, Histogram, Registry, Span, OBS_ENV};
pub use snapshot::{HistogramSnapshot, Snapshot};

/// Whether recording support is compiled in (the `record` feature,
/// on by default). With it off, every recording call is an empty
/// inline function and snapshots only ever show zeros.
pub const RECORDING: bool = cfg!(feature = "record");

/// Default bucket boundaries (in seconds) for latency histograms, from
/// 100 µs to ~30 s — wide enough for both a solver call and a platform
/// phase that waits out retry backoffs.
pub const LATENCY_BOUNDS_SECS: &[f64] = &[
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
];

/// Default bucket boundaries for iteration-count histograms (solver
/// convergence): powers-of-two-ish steps up to the FISTA default cap.
pub const ITERATION_BOUNDS: &[f64] = &[5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0];
