//! Bounded structured-event buffer.
//!
//! Events complement counters for low-rate occurrences that deserve
//! context — a vehicle death carries the vehicle id and the phase it
//! died in, not just a bumped counter. Events carry **no wall-clock
//! timestamp**; ordering is the monotone `seq` assigned under the
//! buffer lock, so same-seed runs of a deterministic system produce
//! byte-identical event logs.

/// A typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    Uint(u64),
    /// Floating-point value.
    Float(f64),
    /// Borrowed-at-record-time string, stored owned.
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<i64> for EventValue {
    fn from(v: i64) -> Self {
        EventValue::Int(v)
    }
}

impl From<u64> for EventValue {
    fn from(v: u64) -> Self {
        EventValue::Uint(v)
    }
}

impl From<usize> for EventValue {
    fn from(v: usize) -> Self {
        EventValue::Uint(v as u64)
    }
}

impl From<f64> for EventValue {
    fn from(v: f64) -> Self {
        EventValue::Float(v)
    }
}

impl From<&str> for EventValue {
    fn from(v: &str) -> Self {
        EventValue::Str(v.to_string())
    }
}

impl From<bool> for EventValue {
    fn from(v: bool) -> Self {
        EventValue::Bool(v)
    }
}

/// One recorded structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotone sequence number within the registry (0-based).
    pub seq: u64,
    /// Event name, dot-namespaced like metric names.
    pub name: String,
    /// Typed fields in the order the recorder supplied them.
    pub fields: Vec<(String, EventValue)>,
}

/// Fixed-capacity event store. When full, new events are counted in
/// `dropped` rather than evicting old ones: the earliest events in a
/// round are usually the diagnostic ones.
#[derive(Debug)]
#[cfg_attr(not(feature = "record"), allow(dead_code))]
pub(crate) struct EventBuffer {
    events: Vec<Event>,
    cap: usize,
    next_seq: u64,
    dropped: u64,
}

impl EventBuffer {
    pub(crate) fn new(cap: usize) -> Self {
        EventBuffer {
            events: Vec::new(),
            cap,
            next_seq: 0,
            dropped: 0,
        }
    }

    #[cfg_attr(not(feature = "record"), allow(dead_code))]
    pub(crate) fn push(&mut self, name: &str, fields: &[(&str, EventValue)]) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Event {
            seq,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    pub(crate) fn events(&self) -> Vec<Event> {
        self.events.clone()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_monotone_seq() {
        let mut buf = EventBuffer::new(8);
        buf.push("a", &[]);
        buf.push("b", &[("k", EventValue::Int(1))]);
        let events = buf.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].fields[0].0, "k");
    }

    #[test]
    fn full_buffer_counts_drops_and_keeps_oldest() {
        let mut buf = EventBuffer::new(2);
        buf.push("a", &[]);
        buf.push("b", &[]);
        buf.push("c", &[]);
        buf.push("d", &[]);
        let events = buf.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].name, "b");
        assert_eq!(buf.dropped(), 2);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(EventValue::from(3usize), EventValue::Uint(3));
        assert_eq!(EventValue::from(-3i64), EventValue::Int(-3));
        assert_eq!(EventValue::from(true), EventValue::Bool(true));
        assert_eq!(EventValue::from("x"), EventValue::Str("x".into()));
    }
}
