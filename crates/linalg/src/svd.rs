//! Singular value decomposition and the Moore–Penrose pseudo-inverse.
//!
//! The paper's Proposition 1 orthogonalization computes `T = Q A†` with
//! `A† ` the pseudo-inverse of the sensing matrix `A = ΦΨ`; this module
//! provides that `A†`.
//!
//! The SVD is built from the symmetric eigendecomposition of the smaller
//! Gram matrix (`AᵀA` or `AAᵀ`), which is accurate enough for the
//! measurement scales in this system (singular values well above
//! round-off) and keeps the kernel dependency-free.

// Index-based loops below mirror the textbook algorithms; iterator
// rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::eigen::SymmetricEigen;
use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// A (thin) singular value decomposition `A = U Σ Vᵀ`.
///
/// With `p = min(m, n)`, `U` is `m × p`, `Σ` is the vector of `p`
/// non-negative singular values in descending order and `V` is `n × p`.
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::{Matrix, Svd};
///
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
/// let svd = Svd::new(&a).unwrap();
/// assert!((svd.singular_values()[0] - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    singular_values: Vec<f64>,
    v: Matrix,
}

impl Svd {
    /// Computes the thin SVD of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for matrices with a zero dimension
    /// and propagates eigensolver failures.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }

        let tall = m >= n;
        // Eigendecompose the smaller Gram matrix.
        let gram = if tall {
            a.transpose().matmul(a)
        } else {
            a.matmul(&a.transpose())
        };
        let eig = SymmetricEigen::new(&gram)?;

        let p = m.min(n);
        let mut singular_values: Vec<f64> = eig
            .eigenvalues()
            .iter()
            .take(p)
            .map(|&l| l.max(0.0).sqrt())
            .collect();

        let scale = singular_values.first().copied().unwrap_or(0.0);
        let tol = 1e-12 * scale.max(1e-300) * (m.max(n) as f64);

        let small_vecs = eig.eigenvectors().select_cols(&(0..p).collect::<Vec<_>>());
        // Columns above the rank tolerance get a singular vector on the
        // other side; the rest are zeroed. The back-multiplication
        // (`A V` or `Aᵀ U`) runs as one batched pass over `a` for all
        // kept columns — bit-identical per column to the one-vector
        // products it replaces.
        let keep: Vec<usize> = (0..p).filter(|&j| singular_values[j] > tol).collect();
        for j in 0..p {
            if singular_values[j] <= tol {
                singular_values[j] = 0.0;
            }
        }
        let mut outs: Vec<Vec<f64>> = vec![Vec::new(); keep.len()];
        let (u, v) = if tall {
            // V from the eigenvectors of AᵀA; U = A V / σ.
            let v = small_vecs;
            let mut u = Matrix::zeros(m, p);
            let vs: Vec<Vec<f64>> = keep.iter().map(|&j| v.col(j)).collect();
            a.matvec_batch_into(&vs, &mut outs);
            for (&j, col) in keep.iter().zip(&outs) {
                let s = singular_values[j];
                for (r, &x) in col.iter().enumerate() {
                    u.set(r, j, x / s);
                }
            }
            (u, v)
        } else {
            // U from the eigenvectors of AAᵀ; V = Aᵀ U / σ.
            let u = small_vecs;
            let mut v = Matrix::zeros(n, p);
            let us: Vec<Vec<f64>> = keep.iter().map(|&j| u.col(j)).collect();
            a.matvec_transposed_batch_into(&us, &mut outs);
            for (&j, col) in keep.iter().zip(&outs) {
                let s = singular_values[j];
                for (r, &x) in col.iter().enumerate() {
                    v.set(r, j, x / s);
                }
            }
            (u, v)
        };

        Ok(Svd {
            u,
            singular_values,
            v,
        })
    }

    /// Left singular vectors (`m × min(m, n)`).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// Singular values in descending order.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Right singular vectors (`n × min(m, n)`).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Numerical rank: singular values above `tol_rel * σ_max`.
    pub fn rank(&self, tol_rel: f64) -> usize {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.singular_values
            .iter()
            .filter(|&&s| s > tol_rel * smax)
            .count()
    }

    /// Moore–Penrose pseudo-inverse `A† = V Σ⁺ Uᵀ`.
    ///
    /// Singular values below `1e-10 · σ_max` are treated as zero.
    pub fn pseudo_inverse(&self) -> Matrix {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        let tol = 1e-10 * smax;
        let p = self.singular_values.len();
        let inv_sigma: Vec<f64> = self
            .singular_values
            .iter()
            .map(|&s| if s > tol { 1.0 / s } else { 0.0 })
            .collect();
        // V Σ⁺ then * Uᵀ.
        let mut vs = Matrix::zeros(self.v.rows(), p);
        for r in 0..self.v.rows() {
            for c in 0..p {
                vs.set(r, c, self.v.get(r, c) * inv_sigma[c]);
            }
        }
        vs.matmul(&self.u.transpose())
    }
}

/// Convenience wrapper: pseudo-inverse of `a` in one call.
///
/// # Errors
///
/// Propagates [`Svd::new`] failures.
pub fn pseudo_inverse(a: &Matrix) -> Result<Matrix> {
    Ok(Svd::new(a)?.pseudo_inverse())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_svd(a: &Matrix) {
        let svd = Svd::new(a).unwrap();
        let sigma = Matrix::diagonal(svd.singular_values());
        let back = svd.u().matmul(&sigma).matmul(&svd.v().transpose());
        assert!(back.approx_eq(a, 1e-7), "SVD reconstruction failed for {a}");
        for w in svd.singular_values().windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "singular values not sorted");
        }
    }

    #[test]
    fn svd_reconstructs_various_shapes() {
        check_svd(&Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]));
        check_svd(&Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        check_svd(&Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
    }

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let pinv = pseudo_inverse(&a).unwrap();
        assert!(a.matmul(&pinv).approx_eq(&Matrix::identity(2), 1e-9));
    }

    #[test]
    fn pinv_satisfies_penrose_conditions() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let p = pseudo_inverse(&a).unwrap();
        // A A† A = A
        assert!(a.matmul(&p).matmul(&a).approx_eq(&a, 1e-7));
        // A† A A† = A†
        assert!(p.matmul(&a).matmul(&p).approx_eq(&p, 1e-7));
        // (A A†)ᵀ = A A†
        let aap = a.matmul(&p);
        assert!(aap.transpose().approx_eq(&aap, 1e-7));
        // (A† A)ᵀ = A† A
        let pa = p.matmul(&a);
        assert!(pa.transpose().approx_eq(&pa, 1e-7));
    }

    #[test]
    fn pinv_rank_deficient() {
        // Rank-1 matrix: A† A is the projector onto the row space.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let p = pseudo_inverse(&a).unwrap();
        assert!(a.matmul(&p).matmul(&a).approx_eq(&a, 1e-8));
        assert_eq!(Svd::new(&a).unwrap().rank(1e-9), 1);
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            Svd::new(&Matrix::zeros(0, 3)),
            Err(LinalgError::Empty)
        ));
    }
}
