//! Conjugate-gradient solver for symmetric positive-definite systems.
//!
//! The direct factorizations ([`crate::solve`]) are right for the small
//! per-window systems; CG is the matrix-free alternative when `(AᵀA+ρI)`
//! grows with the grid (city-scale maps) — it only needs matvecs.

use crate::matrix::Matrix;
use crate::vector;
use crate::{LinalgError, Result};

/// Outcome of a CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A x‖₂`.
    pub residual_norm: f64,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Solves `A x = b` for symmetric positive-definite `A` by conjugate
/// gradients.
///
/// `tol` is relative to `‖b‖₂`; `max_iterations` defaults to the
/// dimension when 0 is passed (CG converges in at most `n` exact steps).
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] for non-square `A` or a
/// mismatched `b`, and [`LinalgError::NotPositiveDefinite`] if a
/// curvature `pᵀAp ≤ 0` is encountered (the matrix is not SPD).
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::{cg::conjugate_gradient, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
/// let sol = conjugate_gradient(&a, &[1.0, 2.0], 1e-10, 0)?;
/// assert!(sol.converged);
/// assert!((a.matvec(&sol.x)[0] - 1.0).abs() < 1e-8);
/// # Ok::<(), crowdwifi_linalg::LinalgError>(())
/// ```
pub fn conjugate_gradient(
    a: &Matrix,
    b: &[f64],
    tol: f64,
    max_iterations: usize,
) -> Result<CgSolution> {
    let n = a.rows();
    if n != a.cols() {
        return Err(LinalgError::ShapeMismatch {
            expected: "square matrix".to_string(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: format!("rhs of length {n}"),
            found: format!("length {}", b.len()),
        });
    }
    let cap = if max_iterations == 0 {
        2 * n
    } else {
        max_iterations
    };
    let bnorm = vector::norm2(b).max(1e-300);

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs = vector::dot(&r, &r);
    let mut iterations = 0;

    while iterations < cap {
        if rs.sqrt() <= tol * bnorm {
            break;
        }
        iterations += 1;
        let ap = a.matvec(&p);
        let curvature = vector::dot(&p, &ap);
        if curvature <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite);
        }
        let alpha = rs / curvature;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &ap, &mut r);
        let rs_new = vector::dot(&r, &r);
        let beta = rs_new / rs;
        for (pi, &ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs = rs_new;
    }

    let residual_norm = vector::norm2(&vector::sub(b, &a.matvec(&x)));
    Ok(CgSolution {
        x,
        iterations,
        residual_norm,
        converged: residual_norm <= tol * bnorm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::Cholesky;

    fn spd(n: usize) -> Matrix {
        // AᵀA + I from a deterministic rectangular seed matrix.
        let seed = Matrix::from_fn(n + 2, n, |r, c| ((r * 7 + c * 3) % 11) as f64 - 5.0);
        let mut g = seed.transpose().matmul(&seed);
        for i in 0..n {
            g.set(i, i, g.get(i, i) + 1.0);
        }
        g
    }

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let sol = conjugate_gradient(&a, &[1.0, 2.0], 1e-12, 0).unwrap();
        assert!(sol.converged);
        // Exact solution (1/11, 7/11).
        assert!((sol.x[0] - 1.0 / 11.0).abs() < 1e-9);
        assert!((sol.x[1] - 7.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_cholesky() {
        let a = spd(12);
        let b: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin()).collect();
        let cg = conjugate_gradient(&a, &b, 1e-12, 0).unwrap();
        let ch = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        for (x, y) in cg.x.iter().zip(&ch) {
            assert!((x - y).abs() < 1e-7, "CG {x} vs Cholesky {y}");
        }
    }

    #[test]
    fn converges_within_dimension_for_exact_arithmetic() {
        let a = spd(20);
        let b = vec![1.0; 20];
        let sol = conjugate_gradient(&a, &b, 1e-10, 0).unwrap();
        assert!(sol.converged);
        assert!(sol.iterations <= 40);
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(
            conjugate_gradient(&a, &[1.0, -1.0], 1e-10, 0).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        assert!(conjugate_gradient(&a, &[1.0, 1.0], 1e-10, 0).is_err());
        let sq = Matrix::identity(3);
        assert!(conjugate_gradient(&sq, &[1.0], 1e-10, 0).is_err());
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = spd(5);
        let sol = conjugate_gradient(&a, &[0.0; 5], 1e-12, 0).unwrap();
        assert!(sol.x.iter().all(|&v| v == 0.0));
        assert!(sol.converged);
    }
}
