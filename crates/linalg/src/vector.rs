//! Free functions over `&[f64]` vectors.
//!
//! These are deliberately plain-slice helpers rather than a newtype: the
//! solver crates shuffle buffers in and out of hot loops and a zero-cost
//! slice API keeps the call sites readable.

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    crate::kernels::dot(a, b)
}

/// Euclidean (ℓ2) norm.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// ℓ1 norm (sum of absolute values).
pub fn norm1(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// ∞-norm (maximum absolute value); `0.0` for the empty vector.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    crate::kernels::axpy(alpha, x, y)
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len());
    sub_into(a, b, &mut out);
    out
}

/// [`sub`] into a caller-provided buffer (cleared and refilled), so hot
/// loops reuse one allocation.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sub_into(a: &[f64], b: &[f64], out: &mut Vec<f64>) {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    out.clear();
    out.extend(a.iter().zip(b).map(|(x, y)| x - y));
}

/// Scales a vector by `s` into a new vector.
pub fn scale(v: &[f64], s: f64) -> Vec<f64> {
    v.iter().map(|x| x * s).collect()
}

/// Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    crate::kernels::distance_sq(a, b).sqrt()
}

/// Number of entries with absolute value above `tol` (empirical sparsity).
pub fn support_size(v: &[f64], tol: f64) -> usize {
    v.iter().filter(|x| x.abs() > tol).count()
}

/// Indices of entries with absolute value above `tol`, ascending.
pub fn support(v: &[f64], tol: f64) -> Vec<usize> {
    v.iter()
        .enumerate()
        .filter(|(_, x)| x.abs() > tol)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert!((norm2(&a) - 5.0).abs() < 1e-12);
        assert_eq!(norm1(&a), 7.0);
        assert_eq!(norm_inf(&a), 4.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn support_detection() {
        let v = [0.0, 1e-12, 0.5, -2.0];
        assert_eq!(support_size(&v, 1e-6), 2);
        assert_eq!(support(&v, 1e-6), vec![2, 3]);
    }

    #[test]
    fn distance_known() {
        assert!((distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
