//! Runtime-dispatched compute kernels for the dense hot path.
//!
//! Every dense primitive the solvers lean on per iteration — `matvec`,
//! the transposed accumulate behind `matvec_transposed_into` /
//! `matvec_transposed_sub_into`, `gram`, `matmul` and the vector
//! `dot`/`axpy`/`distance` ops — exists here in two variants:
//!
//! * [`scalar`] — a verbatim transcription of the original loops. This
//!   is the reference semantics; the byte-equivalence contracts of the
//!   transport layer and the frozen seed-solver assertions in the
//!   throughput bench are defined against it.
//! * [`vector`] — row-blocked, instruction-parallel rewrites.
//!   They are constructed to perform **the same floating-point
//!   operations in the same order per output element** as the scalar
//!   variant, so results are bit-for-bit identical — up to NaN
//!   *payload* bits, which LLVM documents as nondeterministic (it may
//!   commute `fadd` operands, and NaN-vs-NaN addition keeps whichever
//!   operand's payload ends up on the favored side). A property test
//!   (`tests/kernel_equivalence.rs`) enforces bitwise equality across
//!   shapes, ragged tails and non-finite inputs, with NaNs
//!   canonicalized before comparison.
//!   The speed comes from breaking serial FP dependency chains and
//!   cutting memory traffic (four independent row accumulators in
//!   `matvec`, four fused row updates per output pass in `acc_rows`),
//!   not from reassociating any reduction.
//!
//! The top-level functions dispatch between the two at runtime: setting
//! `CROWDWIFI_FORCE_SCALAR=1` in the environment pins the scalar path
//! (benches and A/B tests can also pin a mode in-process with
//! [`set_mode`]). Batched multi-RHS forms ([`matvec_batch`],
//! [`acc_rows_batch`]) stream the matrix once for all right-hand sides
//! instead of once per vector.

// Index-based loops below mirror the textbook algorithms (and the
// scalar reference loops they must match bit-for-bit); iterator
// rewrites obscure the unrolling structure.
#![allow(clippy::needless_range_loop)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation the dispatched entry points use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The reference loops (seed-exact semantics).
    Scalar,
    /// The unrolled, instruction-parallel loops (bit-identical results).
    Vectorized,
}

/// 0 = unresolved (read the environment on first use),
/// 1 = scalar, 2 = vectorized.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Environment variable that pins the scalar kernels for a process.
pub const FORCE_SCALAR_ENV: &str = "CROWDWIFI_FORCE_SCALAR";

/// Resolves the active kernel mode (reading [`FORCE_SCALAR_ENV`] once
/// on first use; the result is cached in an atomic).
#[inline]
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        1 => Mode::Scalar,
        2 => Mode::Vectorized,
        _ => resolve_mode(),
    }
}

#[cold]
fn resolve_mode() -> Mode {
    let forced = std::env::var(FORCE_SCALAR_ENV)
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    let m = if forced {
        Mode::Scalar
    } else {
        Mode::Vectorized
    };
    MODE.store(if forced { 1 } else { 2 }, Ordering::Relaxed);
    m
}

/// Pins the kernel mode process-wide (`None` returns to the
/// environment-derived default, re-read on next use). Intended for
/// benches and A/B tests; both modes produce bit-identical results, so
/// flipping mid-run never changes what is computed, only how fast.
pub fn set_mode(mode: Option<Mode>) {
    let v = match mode {
        None => 0,
        Some(Mode::Scalar) => 1,
        Some(Mode::Vectorized) => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// Whether the dispatched entry points currently use the unrolled path.
#[inline]
pub fn vectorized() -> bool {
    mode() == Mode::Vectorized
}

/// The reference kernels: verbatim transcriptions of the original
/// (pre-`kernels`) loops. Dispatch lands here under
/// `CROWDWIFI_FORCE_SCALAR=1`.
pub mod scalar {
    /// Dot product, accumulated left to right.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// In-place `y += alpha * x`.
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// Squared Euclidean distance, accumulated left to right.
    pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Row-major matrix–vector product: `out[r] = a_row_r · v`.
    /// `a.len() == out.len() * cols`, `v.len() == cols`.
    pub fn matvec(cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot(&a[r * cols..(r + 1) * cols], v);
        }
    }

    /// Row accumulation `out += Σ_r v[r] · a_row_r` (i.e. `Aᵀv` folded
    /// onto a caller-initialized `out`), skipping rows whose
    /// coefficient is exactly zero.
    pub fn acc_rows(cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        for (r, &c) in v.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(&a[r * cols..(r + 1) * cols]) {
                *o += c * x;
            }
        }
    }

    /// Gram matrix `AᵀA` into a pre-zeroed `cols × cols` buffer: upper
    /// triangle as rank-1 row updates (zero coefficients skipped), then
    /// mirrored so both triangles hold identical floats.
    pub fn gram(rows: usize, cols: usize, a: &[f64], g: &mut [f64]) {
        let n = cols;
        for r in 0..rows {
            let row = &a[r * n..(r + 1) * n];
            for i in 0..n {
                let c = row[i];
                if c == 0.0 {
                    continue;
                }
                let dst = &mut g[i * n..(i + 1) * n];
                for j in i..n {
                    dst[j] += c * row[j];
                }
            }
        }
        mirror_upper(n, g);
    }

    /// Copies the upper triangle onto the lower one.
    pub(super) fn mirror_upper(n: usize, g: &mut [f64]) {
        for i in 0..n {
            for j in (i + 1)..n {
                g[j * n + i] = g[i * n + j];
            }
        }
    }

    /// Matrix product `A · B` into a pre-zeroed `rows × cols` buffer,
    /// as row-axpy updates that skip zero coefficients of `A`
    /// (`A` is `rows × k`, `B` is `k × cols`).
    pub fn matmul(rows: usize, k: usize, cols: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        for r in 0..rows {
            for kk in 0..k {
                let c = a[r * k + kk];
                if c == 0.0 {
                    continue;
                }
                let brow = &b[kk * cols..(kk + 1) * cols];
                let dst = &mut out[r * cols..(r + 1) * cols];
                for (d, &x) in dst.iter_mut().zip(brow) {
                    *d += c * x;
                }
            }
        }
    }
}

/// The blocked kernels. Each performs the same FP operations in the
/// same order per output element as its [`scalar`] twin — reductions
/// keep a single accumulator added left to right; the speed comes from
/// *row blocking* (four independent accumulators in `matvec`, four
/// fused row updates per pass over `out` in `acc_rows`), which cuts
/// memory traffic without reassociating anything — so results match
/// the scalar path bit for bit, including for ∞ inputs (NaN payload
/// bits are the one exception; see the module docs). Purely
/// elementwise kernels (`axpy`, `gram`, `matmul`) keep the slice-zip
/// form: LLVM already vectorizes it, and manual unrolls measured
/// *slower*.
pub mod vector {
    /// Dot product: single accumulator, 4-step unrolled body. The
    /// accumulation order is exactly the scalar left-to-right fold.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        // `Iterator::sum` folds from -0.0 (the exact additive
        // identity); start there so the empty and signed-zero cases
        // match the scalar reference bit for bit.
        let mut acc = -0.0;
        let mut i = 0;
        while i + 4 <= n {
            acc += a[i] * b[i];
            acc += a[i + 1] * b[i + 1];
            acc += a[i + 2] * b[i + 2];
            acc += a[i + 3] * b[i + 3];
            i += 4;
        }
        while i < n {
            acc += a[i] * b[i];
            i += 1;
        }
        acc
    }

    /// In-place `y += alpha * x`. Output elements are independent, so
    /// the zip form already auto-vectorizes optimally; a manual unroll
    /// only obscures that from LLVM (measured slower). Kept as the
    /// building block the blocked kernels below fall back to.
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// Squared distance: single accumulator, 4-step unrolled body.
    pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut acc = -0.0; // sum's fold identity; see `dot`
        let mut i = 0;
        while i + 4 <= n {
            let d0 = a[i] - b[i];
            let d1 = a[i + 1] - b[i + 1];
            let d2 = a[i + 2] - b[i + 2];
            let d3 = a[i + 3] - b[i + 3];
            acc += d0 * d0;
            acc += d1 * d1;
            acc += d2 * d2;
            acc += d3 * d3;
            i += 4;
        }
        while i < n {
            let d = a[i] - b[i];
            acc += d * d;
            i += 1;
        }
        acc
    }

    /// Matrix–vector product with 4-row blocking: four independent
    /// accumulators (one per output row) break the serial FP-add chain
    /// the scalar per-row dot is stuck on, while each row's own sum
    /// still runs strictly left to right — bit-identical per row.
    pub fn matvec(cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        let rows = out.len();
        let v = &v[..cols];
        let mut r = 0;
        while r + 4 <= rows {
            let r0 = &a[r * cols..(r + 1) * cols];
            let r1 = &a[(r + 1) * cols..(r + 2) * cols];
            let r2 = &a[(r + 2) * cols..(r + 3) * cols];
            let r3 = &a[(r + 3) * cols..(r + 4) * cols];
            let (mut s0, mut s1, mut s2, mut s3) = (-0.0, -0.0, -0.0, -0.0);
            for i in 0..cols {
                let x = v[i];
                s0 += r0[i] * x;
                s1 += r1[i] * x;
                s2 += r2[i] * x;
                s3 += r3[i] * x;
            }
            out[r] = s0;
            out[r + 1] = s1;
            out[r + 2] = s2;
            out[r + 3] = s3;
            r += 4;
        }
        while r < rows {
            out[r] = dot(&a[r * cols..(r + 1) * cols], v);
            r += 1;
        }
    }

    /// Row accumulation `out += Σ_r v[r] · a_row_r` with 4-row
    /// blocking: when four consecutive coefficients are all nonzero,
    /// `out` is read and written once for the whole block instead of
    /// once per row. For each output element the four adds still land
    /// in row order — exactly the order the scalar kernel's
    /// row-at-a-time axpys produce — so results are bit-identical;
    /// blocks containing a zero coefficient fall back to per-row
    /// [`axpy`] to preserve the scalar zero-skip.
    pub fn acc_rows(cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
        let out = &mut out[..cols];
        let rows = v.len();
        let mut r = 0;
        while r + 4 <= rows {
            let (c0, c1, c2, c3) = (v[r], v[r + 1], v[r + 2], v[r + 3]);
            if c0 != 0.0 && c1 != 0.0 && c2 != 0.0 && c3 != 0.0 {
                let r0 = &a[r * cols..(r + 1) * cols];
                let r1 = &a[(r + 1) * cols..(r + 2) * cols];
                let r2 = &a[(r + 2) * cols..(r + 3) * cols];
                let r3 = &a[(r + 3) * cols..(r + 4) * cols];
                for j in 0..cols {
                    let mut acc = out[j];
                    acc += c0 * r0[j];
                    acc += c1 * r1[j];
                    acc += c2 * r2[j];
                    acc += c3 * r3[j];
                    out[j] = acc;
                }
            } else {
                for k in 0..4 {
                    let c = v[r + k];
                    if c != 0.0 {
                        axpy(c, &a[(r + k) * cols..(r + k + 1) * cols], out);
                    }
                }
            }
            r += 4;
        }
        while r < rows {
            let c = v[r];
            if c != 0.0 {
                axpy(c, &a[r * cols..(r + 1) * cols], out);
            }
            r += 1;
        }
    }

    /// Gram matrix into a pre-zeroed buffer: same triangular rank-1
    /// structure as the scalar kernel, with the inner update expressed
    /// as a slice zip so the bounds checks hoist and the independent
    /// elements auto-vectorize.
    pub fn gram(rows: usize, cols: usize, a: &[f64], g: &mut [f64]) {
        let n = cols;
        for r in 0..rows {
            let row = &a[r * n..(r + 1) * n];
            for i in 0..n {
                let c = row[i];
                if c == 0.0 {
                    continue;
                }
                let dst = &mut g[i * n + i..(i + 1) * n];
                for (d, &x) in dst.iter_mut().zip(&row[i..]) {
                    *d += c * x;
                }
            }
        }
        super::scalar::mirror_upper(n, g);
    }

    /// Matrix product into a pre-zeroed buffer: same zero-skip row-axpy
    /// structure as the scalar kernel, with the destination row slice
    /// hoisted out of the inner loop.
    pub fn matmul(rows: usize, k: usize, cols: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        for r in 0..rows {
            let dst = &mut out[r * cols..(r + 1) * cols];
            for kk in 0..k {
                let c = a[r * k + kk];
                if c == 0.0 {
                    continue;
                }
                axpy(c, &b[kk * cols..(kk + 1) * cols], dst);
            }
        }
    }
}

/// Dispatched dot product (see [`scalar::dot`] / [`vector::dot`]).
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    if vectorized() {
        vector::dot(a, b)
    } else {
        scalar::dot(a, b)
    }
}

/// Dispatched in-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    if vectorized() {
        vector::axpy(alpha, x, y)
    } else {
        scalar::axpy(alpha, x, y)
    }
}

/// Dispatched squared Euclidean distance.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    if vectorized() {
        vector::distance_sq(a, b)
    } else {
        scalar::distance_sq(a, b)
    }
}

/// Dispatched matrix–vector product (`a` row-major, `rows` implied by
/// `out.len()`).
pub fn matvec(cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
    if vectorized() {
        vector::matvec(cols, a, v, out)
    } else {
        scalar::matvec(cols, a, v, out)
    }
}

/// Dispatched row accumulation (the shared core of `Aᵀv` and the fused
/// `Aᵀv − c` gradient; `out` must be caller-initialized).
pub fn acc_rows(cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
    if vectorized() {
        vector::acc_rows(cols, a, v, out)
    } else {
        scalar::acc_rows(cols, a, v, out)
    }
}

/// Dispatched Gram matrix into a pre-zeroed `cols × cols` buffer.
pub fn gram(rows: usize, cols: usize, a: &[f64], g: &mut [f64]) {
    if vectorized() {
        vector::gram(rows, cols, a, g)
    } else {
        scalar::gram(rows, cols, a, g)
    }
}

/// Dispatched matrix product into a pre-zeroed `rows × cols` buffer.
pub fn matmul(rows: usize, k: usize, cols: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    if vectorized() {
        vector::matmul(rows, k, cols, a, b, out)
    } else {
        scalar::matmul(rows, k, cols, a, b, out)
    }
}

/// Batched matrix–vector products: `outs[j] = A · vs[j]` for all `j`
/// in **one pass over the matrix rows** (each row is loaded once and
/// dotted against every right-hand side), instead of the `k` separate
/// full-matrix traversals the one-vector entry point would make.
/// Per column the accumulation order equals [`matvec`], so each output
/// is bit-identical to a standalone product.
///
/// # Panics
///
/// Panics if any `vs[j].len() != cols` or `outs` length differs from
/// `vs`.
pub fn matvec_batch(rows: usize, cols: usize, a: &[f64], vs: &[Vec<f64>], outs: &mut [Vec<f64>]) {
    assert_eq!(vs.len(), outs.len(), "matvec_batch arity mismatch");
    for (v, out) in vs.iter().zip(outs.iter_mut()) {
        assert_eq!(v.len(), cols, "matvec_batch shape mismatch");
        out.clear();
        out.resize(rows, 0.0);
    }
    if vectorized() {
        let mut r = 0;
        while r < rows {
            let row = &a[r * cols..(r + 1) * cols];
            for (v, out) in vs.iter().zip(outs.iter_mut()) {
                out[r] = vector::dot(row, v);
            }
            r += 1;
        }
    } else {
        for (v, out) in vs.iter().zip(outs.iter_mut()) {
            scalar::matvec(cols, a, v, out);
        }
    }
}

/// Batched transposed products: `outs[j] += Aᵀ · vs[j]` onto
/// caller-initialized outputs, streaming the matrix rows once for all
/// right-hand sides. Zero coefficients are skipped per column exactly
/// as in [`acc_rows`], so each output is bit-identical to a standalone
/// accumulation.
///
/// # Panics
///
/// Panics if any `vs[j].len() != rows`, any `outs[j].len() != cols`, or
/// `outs` length differs from `vs`.
pub fn acc_rows_batch(rows: usize, cols: usize, a: &[f64], vs: &[Vec<f64>], outs: &mut [Vec<f64>]) {
    assert_eq!(vs.len(), outs.len(), "acc_rows_batch arity mismatch");
    for (v, out) in vs.iter().zip(outs.iter()) {
        assert_eq!(v.len(), rows, "acc_rows_batch shape mismatch");
        assert_eq!(out.len(), cols, "acc_rows_batch output mismatch");
    }
    if vectorized() {
        let mut r = 0;
        while r < rows {
            let row = &a[r * cols..(r + 1) * cols];
            for (v, out) in vs.iter().zip(outs.iter_mut()) {
                let c = v[r];
                if c == 0.0 {
                    continue;
                }
                vector::axpy(c, row, out);
            }
            r += 1;
        }
    } else {
        for (v, out) in vs.iter().zip(outs.iter_mut()) {
            scalar::acc_rows(cols, a, v, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, seed: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64) * 0.7 + seed).sin() * 3.0)
            .collect()
    }

    #[test]
    fn scalar_and_vector_dot_match_bitwise() {
        for n in [0, 1, 3, 4, 7, 16, 33] {
            let a = ramp(n, 0.3);
            let b = ramp(n, 1.1);
            assert_eq!(scalar::dot(&a, &b).to_bits(), vector::dot(&a, &b).to_bits());
        }
    }

    #[test]
    fn scalar_and_vector_matvec_match_bitwise() {
        for (rows, cols) in [(0, 3), (1, 5), (4, 4), (5, 7), (9, 1), (6, 0)] {
            let a = ramp(rows * cols, 0.5);
            let v = ramp(cols, 2.2);
            let mut s = vec![0.0; rows];
            let mut u = vec![0.0; rows];
            scalar::matvec(cols, &a, &v, &mut s);
            vector::matvec(cols, &a, &v, &mut u);
            assert_eq!(
                s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                u.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn mode_round_trips() {
        // Save and restore whatever the process-wide state was, so this
        // test composes with the equivalence suite.
        let before = mode();
        set_mode(Some(Mode::Scalar));
        assert!(!vectorized());
        set_mode(Some(Mode::Vectorized));
        assert!(vectorized());
        set_mode(Some(before));
    }

    #[test]
    fn batch_matches_singles() {
        let (rows, cols) = (5, 7);
        let a = ramp(rows * cols, 0.9);
        let vs: Vec<Vec<f64>> = (0..3).map(|j| ramp(cols, j as f64)).collect();
        let mut outs: Vec<Vec<f64>> = vec![Vec::new(); 3];
        matvec_batch(rows, cols, &a, &vs, &mut outs);
        for (v, out) in vs.iter().zip(&outs) {
            let mut single = vec![0.0; rows];
            matvec(cols, &a, v, &mut single);
            assert_eq!(&single, out);
        }

        let ws: Vec<Vec<f64>> = (0..3).map(|j| ramp(rows, 5.0 + j as f64)).collect();
        let mut touts: Vec<Vec<f64>> = vec![vec![0.0; cols]; 3];
        acc_rows_batch(rows, cols, &a, &ws, &mut touts);
        for (w, out) in ws.iter().zip(&touts) {
            let mut single = vec![0.0; cols];
            acc_rows(cols, &a, w, &mut single);
            assert_eq!(&single, out);
        }
    }
}
