//! Symmetric eigendecomposition via the cyclic Jacobi method.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenpairs are sorted by **descending** eigenvalue, the order both the
/// classical-MDS baseline and the SVD construction want.
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::{Matrix, SymmetricEigen};
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
/// let e = SymmetricEigen::new(&a).unwrap();
/// assert!((e.eigenvalues()[0] - 3.0).abs() < 1e-10);
/// assert!((e.eigenvalues()[1] - 2.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Computes the eigendecomposition of symmetric `a`.
    ///
    /// Only the lower triangle is trusted; minor asymmetry from round-off
    /// is tolerated by symmetrizing internally.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] for non-square input,
    /// [`LinalgError::Empty`] for a 0×0 matrix and
    /// [`LinalgError::NoConvergence`] if the sweeps fail to drive the
    /// off-diagonal mass to zero (pathological inputs only).
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if n != a.cols() {
            return Err(LinalgError::ShapeMismatch {
                expected: "square matrix".to_string(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        if n == 0 {
            return Err(LinalgError::Empty);
        }

        // Symmetrize to be robust to tiny asymmetries in the input.
        let mut m = Matrix::from_fn(n, n, |r, c| 0.5 * (a.get(r, c) + a.get(c, r)));
        let mut v = Matrix::identity(n);

        let off = |m: &Matrix| -> f64 {
            let mut s = 0.0;
            for r in 0..n {
                for c in (r + 1)..n {
                    s += m.get(r, c) * m.get(r, c);
                }
            }
            s.sqrt()
        };

        let scale = m.max_abs().max(1.0);
        let tol = 1e-14 * scale * (n as f64);

        let mut sweeps = 0;
        while off(&m) > tol {
            sweeps += 1;
            if sweeps > MAX_SWEEPS {
                return Err(LinalgError::NoConvergence { iterations: sweeps });
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m.get(p, q);
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    let app = m.get(p, p);
                    let aqq = m.get(q, q);
                    // Classic Jacobi rotation.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Update rows/columns p and q of m.
                    for k in 0..n {
                        let mkp = m.get(k, p);
                        let mkq = m.get(k, q);
                        m.set(k, p, c * mkp - s * mkq);
                        m.set(k, q, s * mkp + c * mkq);
                    }
                    for k in 0..n {
                        let mpk = m.get(p, k);
                        let mqk = m.get(q, k);
                        m.set(p, k, c * mpk - s * mqk);
                        m.set(q, k, s * mpk + c * mqk);
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }

        // Extract and sort descending.
        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
        order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("NaN eigenvalue"));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let eigenvectors = v.select_cols(&order);

        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues in descending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Matrix whose `i`-th column is the eigenvector for `eigenvalues()[i]`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &Matrix) {
        let e = SymmetricEigen::new(a).unwrap();
        let n = a.rows();
        let v = e.eigenvectors();
        // V diag(λ) Vᵀ == A
        let lam = Matrix::diagonal(e.eigenvalues());
        let back = v.matmul(&lam).matmul(&v.transpose());
        assert!(back.approx_eq(a, 1e-8), "reconstruction failed for {a}");
        // V orthogonal.
        assert!(v
            .transpose()
            .matmul(v)
            .approx_eq(&Matrix::identity(n), 1e-8));
        // Sorted descending.
        for w in e.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::diagonal(&[1.0, 5.0, 3.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues()[0] - 5.0).abs() < 1e-12);
        assert!((e.eigenvalues()[1] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues()[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues()[0] - 3.0).abs() < 1e-10);
        assert!((e.eigenvalues()[1] - 1.0).abs() < 1e-10);
        check_decomposition(&a);
    }

    #[test]
    fn reconstruction_various_sizes() {
        check_decomposition(&Matrix::from_rows(&[
            &[4.0, 1.0, -2.0],
            &[1.0, 2.0, 0.0],
            &[-2.0, 0.0, 3.0],
        ]));
        // A Gram matrix (PSD) of a random-ish 4x3.
        let b = Matrix::from_fn(4, 3, |r, c| ((r * 5 + c * 3) % 7) as f64 - 3.0);
        check_decomposition(&b.transpose().matmul(&b));
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            SymmetricEigen::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            SymmetricEigen::new(&Matrix::zeros(0, 0)).unwrap_err(),
            LinalgError::Empty
        );
    }
}
