//! Symmetric eigendecomposition via the cyclic Jacobi method.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenpairs are sorted by **descending** eigenvalue, the order both the
/// classical-MDS baseline and the SVD construction want.
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::{Matrix, SymmetricEigen};
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
/// let e = SymmetricEigen::new(&a).unwrap();
/// assert!((e.eigenvalues()[0] - 3.0).abs() < 1e-10);
/// assert!((e.eigenvalues()[1] - 2.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Computes the eigendecomposition of symmetric `a`.
    ///
    /// Only the lower triangle is trusted; minor asymmetry from round-off
    /// is tolerated by symmetrizing internally.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] for non-square input,
    /// [`LinalgError::Empty`] for a 0×0 matrix and
    /// [`LinalgError::NoConvergence`] if the sweeps fail to drive the
    /// off-diagonal mass to zero (pathological inputs only).
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if n != a.cols() {
            return Err(LinalgError::ShapeMismatch {
                expected: "square matrix".to_string(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        if n == 0 {
            return Err(LinalgError::Empty);
        }

        // Symmetrize to be robust to tiny asymmetries in the input.
        // The sweep works on a raw row-major buffer (`md`) and keeps the
        // eigenvector accumulator *transposed* (`vt`: row `i` holds what
        // the textbook form stores in column `i`), so every rotation
        // below touches contiguous rows instead of strided columns and
        // bounds checks hoist out of the inner loops. Each element still
        // sees exactly the FP operations, in the order, of the classic
        // three-loop update, so results are bit-identical to it.
        let mut md: Vec<f64> = Vec::with_capacity(n * n);
        for r in 0..n {
            for c in 0..n {
                md.push(0.5 * (a.get(r, c) + a.get(c, r)));
            }
        }
        let mut vt = vec![0.0_f64; n * n];
        for i in 0..n {
            vt[i * n + i] = 1.0;
        }

        let off = |md: &[f64]| -> f64 {
            let mut s = 0.0;
            for (r, row) in md.chunks_exact(n).enumerate() {
                for &x in &row[r + 1..] {
                    s += x * x;
                }
            }
            s.sqrt()
        };

        let scale = md.iter().fold(0.0_f64, |m, &a| m.max(a.abs())).max(1.0);
        let tol = 1e-14 * scale * (n as f64);

        // Plane rotation of two equal-length slices: x' = c·x − s·y,
        // y' = s·x + c·y. Elements are independent, so the slice form
        // computes the same floats as the indexed loop it replaces.
        let rot = |c: f64, s: f64, x: &mut [f64], y: &mut [f64]| {
            for (xi, yi) in x.iter_mut().zip(y) {
                let (a, b) = (*xi, *yi);
                *xi = c * a - s * b;
                *yi = s * a + c * b;
            }
        };

        let mut sweeps = 0;
        while off(&md) > tol {
            sweeps += 1;
            if sweeps > MAX_SWEEPS {
                return Err(LinalgError::NoConvergence { iterations: sweeps });
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = md[p * n + q];
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    let app = md[p * n + p];
                    let aqq = md[q * n + q];
                    // Classic Jacobi rotation.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Columns p and q of m: one pass over the rows.
                    for row in md.chunks_exact_mut(n) {
                        let mkp = row[p];
                        let mkq = row[q];
                        row[p] = c * mkp - s * mkq;
                        row[q] = s * mkp + c * mkq;
                    }
                    // Rows p and q of m (contiguous; p < q).
                    let (head, tail) = md.split_at_mut(q * n);
                    rot(c, s, &mut head[p * n..p * n + n], &mut tail[..n]);
                    // Accumulate eigenvectors: the textbook column update
                    // is a row update on the transposed accumulator.
                    let (vh, vtl) = vt.split_at_mut(q * n);
                    rot(c, s, &mut vh[p * n..p * n + n], &mut vtl[..n]);
                }
            }
        }

        // Extract and sort descending.
        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| md[i * n + i]).collect();
        order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("NaN eigenvalue"));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        // Column j of the result is eigenvector order[j] — row order[j]
        // of the transposed accumulator.
        let eigenvectors = Matrix::from_fn(n, n, |r, c| vt[order[c] * n + r]);

        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues in descending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Matrix whose `i`-th column is the eigenvector for `eigenvalues()[i]`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &Matrix) {
        let e = SymmetricEigen::new(a).unwrap();
        let n = a.rows();
        let v = e.eigenvectors();
        // V diag(λ) Vᵀ == A
        let lam = Matrix::diagonal(e.eigenvalues());
        let back = v.matmul(&lam).matmul(&v.transpose());
        assert!(back.approx_eq(a, 1e-8), "reconstruction failed for {a}");
        // V orthogonal.
        assert!(v
            .transpose()
            .matmul(v)
            .approx_eq(&Matrix::identity(n), 1e-8));
        // Sorted descending.
        for w in e.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::diagonal(&[1.0, 5.0, 3.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues()[0] - 5.0).abs() < 1e-12);
        assert!((e.eigenvalues()[1] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues()[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues()[0] - 3.0).abs() < 1e-10);
        assert!((e.eigenvalues()[1] - 1.0).abs() < 1e-10);
        check_decomposition(&a);
    }

    #[test]
    fn reconstruction_various_sizes() {
        check_decomposition(&Matrix::from_rows(&[
            &[4.0, 1.0, -2.0],
            &[1.0, 2.0, 0.0],
            &[-2.0, 0.0, 3.0],
        ]));
        // A Gram matrix (PSD) of a random-ish 4x3.
        let b = Matrix::from_fn(4, 3, |r, c| ((r * 5 + c * 3) % 7) as f64 - 3.0);
        check_decomposition(&b.transpose().matmul(&b));
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            SymmetricEigen::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            SymmetricEigen::new(&Matrix::zeros(0, 0)).unwrap_err(),
            LinalgError::Empty
        );
    }
}
