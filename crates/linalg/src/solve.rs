//! Direct solvers: LU with partial pivoting and Cholesky.
//!
//! The ADMM basis-pursuit solver factors `(AᵀA + ρI)` once per problem and
//! back-substitutes every iteration — Cholesky makes that cheap.

// Index-based loops below mirror the textbook algorithms; iterator
// rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// LU decomposition with partial pivoting (`P A = L U`).
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::{Matrix, solve::Lu};
///
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
/// let lu = Lu::new(&a).unwrap();
/// let x = lu.solve(&[2.0, 2.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation applied to the right-hand side.
    perm: Vec<usize>,
}

impl Lu {
    /// Factors square `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] for non-square input and
    /// [`LinalgError::Singular`] if a pivot vanishes.
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if n != a.cols() {
            return Err(LinalgError::ShapeMismatch {
                expected: "square matrix".to_string(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivoting: largest |entry| in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for r in (k + 1)..n {
                let v = lu.get(r, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu.get(k, c);
                    lu.set(k, c, lu.get(pivot_row, c));
                    lu.set(pivot_row, c, tmp);
                }
                perm.swap(k, pivot_row);
            }
            let pivot = lu.get(k, k);
            for r in (k + 1)..n {
                let factor = lu.get(r, k) / pivot;
                lu.set(r, k, factor);
                for c in (k + 1)..n {
                    let v = lu.get(r, c) - factor * lu.get(k, c);
                    lu.set(r, c, v);
                }
            }
        }
        Ok(Lu { lu, perm })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// [`Lu::solve`] into a caller-provided buffer (cleared and resized),
    /// avoiding per-call allocation in iterative solvers. Both triangular
    /// substitutions run in `x` itself: back substitution at row `i`
    /// reads only `x[j]` for `j > i` (already transformed) and the
    /// forward-solve value still sitting at `x[i]`, so the floats match
    /// the two-buffer formulation exactly.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b` has the wrong length.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        x.clear();
        x.resize(n, 0.0);
        // Forward substitution with permuted b (L has unit diagonal).
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for j in 0..i {
                s -= self.lu.get(i, j) * x[j];
            }
            x[i] = s;
        }
        // Back substitution on U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu.get(i, j) * x[j];
            }
            x[i] = s / self.lu.get(i, i);
        }
        Ok(())
    }
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::{Matrix, solve::Cholesky};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = Cholesky::new(&a).unwrap();
/// let x = ch.solve(&[8.0, 7.0]).unwrap();
/// assert!((x[0] - 1.25).abs() < 1e-12 && (x[1] - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors symmetric positive-definite `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] for non-square input and
    /// [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is
    /// non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if n != a.cols() {
            return Err(LinalgError::ShapeMismatch {
                expected: "square matrix".to_string(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l.set(i, j, s.sqrt());
                } else {
                    l.set(i, j, s / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via the two triangular solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// [`Cholesky::solve`] into a caller-provided buffer (cleared and
    /// resized), avoiding per-call allocation in iterative solvers. The
    /// `Lᵀ` substitution runs in place over the `L`-solve values (row
    /// `i` reads only already-transformed `x[j]`, `j > i`, plus its own
    /// forward value), so the floats match the two-buffer formulation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b` has the wrong length.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        x.clear();
        x.resize(n, 0.0);
        // L y = b.
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l.get(i, j) * x[j];
            }
            x[i] = s / self.l.get(i, i);
        }
        // Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.l.get(j, i) * x[j];
            }
            x[i] = s / self.l.get(i, i);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_solves_with_pivoting_needed() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = Lu::new(&a).unwrap().solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_random_roundtrip() {
        let a = Matrix::from_rows(&[&[2.0, -1.0, 3.0], &[4.0, 2.0, 1.0], &[-2.0, 5.0, -1.0]]);
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(Lu::new(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn cholesky_factor_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        assert!(ch.l().matmul(&ch.l().transpose()).approx_eq(&a, 1e-10));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(
            Cholesky::new(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn solvers_agree() {
        let a = Matrix::from_rows(&[&[5.0, 1.0], &[1.0, 4.0]]);
        let b = [6.0, 5.0];
        let x1 = Lu::new(&a).unwrap().solve(&b).unwrap();
        let x2 = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}
