//! Row-major dense matrix type and elementary operations.

// Index-based loops below mirror the textbook algorithms; iterator
// rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::kernels;
use crate::{LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// This is the workhorse of the CrowdWiFi math stack: the sparsity basis
/// `Ψ`, measurement matrix `Φ`, sensing matrix `A = ΦΨ` and orthogonalized
/// operator `Q` of the paper are all `Matrix` values.
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::Matrix;
///
/// let i = Matrix::identity(3);
/// let x = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(i.matmul(&x), x);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix dimensions overflow");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut m = Matrix::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "inconsistent row lengths");
            m.data[r * cols..(r + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Creates a matrix taking ownership of a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{rows}*{cols}={} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a column vector (an `n × 1` matrix) from a slice.
    pub fn column(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new `Vec`.
    ///
    /// Hot loops that only need to *read* a column should prefer
    /// [`Matrix::col_iter`] (or the fused [`Matrix::col_dot`] /
    /// [`Matrix::col_sumsq`]), which walk the strided storage without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column out of bounds");
        self.col_iter(c).collect()
    }

    /// Iterates over column `c` (top to bottom) without allocating —
    /// the borrowing counterpart of [`Matrix::col`] for hot loops.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(c < self.cols, "column out of bounds");
        let tail = if self.rows == 0 {
            &[][..]
        } else {
            &self.data[c..]
        };
        tail.iter().step_by(self.cols.max(1)).copied()
    }

    /// Dot product of column `c` with `v`, accumulated top to bottom —
    /// exactly the floats `vector::dot(&self.col(c), v)` would produce,
    /// without materializing the column.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or `v.len() != self.rows()`.
    pub fn col_dot(&self, c: usize, v: &[f64]) -> f64 {
        assert_eq!(v.len(), self.rows, "col_dot length mismatch");
        // -0.0 is `dot`'s fold identity; see `kernels::vector::dot`.
        let mut acc = -0.0;
        for (x, &y) in self.col_iter(c).zip(v) {
            acc += x * y;
        }
        acc
    }

    /// Sum of squares of column `c`, accumulated top to bottom — the
    /// same floats as `vector::dot(&col, &col)` on the copied column.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn col_sumsq(&self, c: usize) -> f64 {
        // -0.0 is `dot`'s fold identity; see `kernels::vector::dot`.
        let mut acc = -0.0;
        for x in self.col_iter(c) {
            acc += x * x;
        }
        acc
    }

    /// ℓ2 norm of column `c` (`col_sumsq(c).sqrt()`), matching
    /// `vector::norm2(&self.col(c))` bit for bit without the copy.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn col_norm2(&self, c: usize) -> f64 {
        self.col_sumsq(c).sqrt()
    }

    /// Underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        kernels::matmul(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows);
        self.matvec_into(v, &mut out);
        out
    }

    /// [`Matrix::matvec`] into a caller-provided buffer (cleared and
    /// refilled), so hot loops reuse one allocation. Produces exactly
    /// the floats [`Matrix::matvec`] would.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        out.clear();
        out.resize(self.rows, 0.0);
        kernels::matvec(self.cols, &self.data, v, out);
    }

    /// Batched [`Matrix::matvec_into`]: `outs[j] = self · vs[j]` for
    /// every right-hand side in one pass over the matrix rows (each row
    /// is loaded once and dotted against all of `vs`), instead of one
    /// full traversal per vector. Each output is bit-identical to the
    /// corresponding single-vector product.
    ///
    /// # Panics
    ///
    /// Panics if any `vs[j].len() != self.cols()` or
    /// `outs.len() != vs.len()`.
    pub fn matvec_batch_into(&self, vs: &[Vec<f64>], outs: &mut [Vec<f64>]) {
        kernels::matvec_batch(self.rows, self.cols, &self.data, vs, outs);
    }

    /// Transposed matrix–vector product `selfᵀ * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn matvec_transposed(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.cols);
        self.matvec_transposed_into(v, &mut out);
        out
    }

    /// [`Matrix::matvec_transposed`] into a caller-provided buffer
    /// (cleared and refilled); accumulation order — including the
    /// zero-coefficient row skip — matches the allocating form, so the
    /// two produce identical floats.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn matvec_transposed_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.rows, "matvec_transposed shape mismatch");
        out.clear();
        out.resize(self.cols, 0.0);
        kernels::acc_rows(self.cols, &self.data, v, out);
    }

    /// Batched [`Matrix::matvec_transposed_into`]: `outs[j] = selfᵀ ·
    /// vs[j]` for every right-hand side in one pass over the matrix
    /// rows. The per-column zero-coefficient skip and accumulation
    /// order match the single-vector form, so each output is
    /// bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if any `vs[j].len() != self.rows()` or
    /// `outs.len() != vs.len()`.
    pub fn matvec_transposed_batch_into(&self, vs: &[Vec<f64>], outs: &mut [Vec<f64>]) {
        for out in outs.iter_mut() {
            out.clear();
            out.resize(self.cols, 0.0);
        }
        kernels::acc_rows_batch(self.rows, self.cols, &self.data, vs, outs);
    }

    /// Gram matrix `selfᵀ * self` (`cols × cols`, symmetric).
    ///
    /// Built as a sum of rank-1 updates over the rows, filling only the
    /// upper triangle and mirroring it, so the cost is `rows·cols²/2`
    /// multiply-adds — half of a generic `transpose().matmul(self)` —
    /// and the result is exactly symmetric (the mirrored entries are
    /// the same floats, not re-derived sums).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        kernels::gram(self.rows, n, &self.data, &mut g.data);
        g
    }

    /// Fused `selfᵀ * v − c` into a caller-provided buffer, skipping
    /// zero entries of `v`.
    ///
    /// This is the Gram-residual update of the accelerated solvers:
    /// with `self = G = AᵀA` (symmetric) and `c = Aᵀy`, it evaluates
    /// the gradient `∇½‖Ax−y‖² = Gx − c` in one pass, touching only
    /// the Gram rows whose coefficient is nonzero — after soft
    /// thresholding the iterate is sparse, so most rows are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()` or `c.len() != self.cols()`.
    pub fn matvec_transposed_sub_into(&self, v: &[f64], c: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.rows, "matvec_transposed_sub shape mismatch");
        assert_eq!(c.len(), self.cols, "matvec_transposed_sub rhs mismatch");
        out.clear();
        out.extend(c.iter().map(|&x| -x));
        kernels::acc_rows(self.cols, &self.data, v, out);
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Maximum absolute element value (∞-entrywise norm); `0.0` when empty.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &a| m.max(a.abs()))
    }

    /// Returns a new matrix consisting of the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "row index out of bounds");
            m.data[dst * self.cols..(dst + 1) * self.cols].copy_from_slice(self.row(src));
        }
        m
    }

    /// Returns a new matrix consisting of the selected columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (dst, &src) in indices.iter().enumerate() {
                assert!(src < self.cols, "column index out of bounds");
                m.set(r, dst, self.get(r, src));
            }
        }
        m
    }

    /// `true` if every corresponding element differs by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let x = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64 + 1.0);
        assert_eq!(Matrix::identity(3).matmul(&x), x);
        assert_eq!(x.matmul(&Matrix::identity(3)), x);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(2, 4, |r, c| (r * 7 + c) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f64);
        let v = [1.0, -2.0];
        let by_vec = a.matvec(&v);
        let by_mat = a.matmul(&Matrix::column(&v));
        for (i, x) in by_vec.iter().enumerate() {
            assert_eq!(*x, by_mat.get(i, 0));
        }
    }

    #[test]
    fn matvec_transposed_matches_transpose_then_matvec() {
        let a = Matrix::from_fn(3, 2, |r, c| (2 * r + 3 * c) as f64);
        let v = [1.0, 0.5, -1.0];
        assert_eq!(a.matvec_transposed(&v), a.transpose().matvec(&v));
    }

    #[test]
    fn gram_matches_transpose_matmul() {
        let a = Matrix::from_fn(4, 3, |r, c| ((r * 5 + c * 3) % 7) as f64 - 3.0);
        let g = a.gram();
        let reference = a.transpose().matmul(&a);
        assert!(g.approx_eq(&reference, 1e-12));
        // Exact symmetry: mirrored entries are identical floats.
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn matvec_transposed_sub_is_fused_gradient() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64 * 0.25 - 1.0);
        let g = a.gram();
        let v = [0.5, 0.0, -1.5, 0.0]; // sparse iterate: zero rows skipped
        let c = [1.0, -2.0, 0.5, 3.0];
        let mut out = Vec::new();
        g.matvec_transposed_sub_into(&v, &c, &mut out);
        // G is symmetric, so Gᵀv − c == Gv − c.
        let reference: Vec<f64> = g
            .matvec(&v)
            .iter()
            .zip(&c)
            .map(|(gv, ci)| gv - ci)
            .collect();
        for (o, r) in out.iter().zip(&reference) {
            assert!((o - r).abs() < 1e-12);
        }
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let rsel = m.select_rows(&[2, 0]);
        assert_eq!(rsel.row(0), &[6.0, 7.0, 8.0]);
        assert_eq!(rsel.row(1), &[0.0, 1.0, 2.0]);
        let csel = m.select_cols(&[1]);
        assert_eq!(csel.col(0), vec![1.0, 4.0, 7.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::identity(2);
        assert!(!format!("{m}").is_empty());
    }

    #[test]
    fn diagonal_matrix() {
        let d = Matrix::diagonal(&[1.0, 2.0]);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(1, 1).get(1, 0);
    }
}
