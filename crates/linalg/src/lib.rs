//! Dense linear algebra substrate for the CrowdWiFi reproduction.
//!
//! The CrowdWiFi pipeline needs a small but solid set of dense kernels:
//!
//! * a row-major [`Matrix`] type with the usual products ([`matrix`]),
//! * Householder QR with least-squares solving ([`qr`]),
//! * a symmetric Jacobi eigensolver ([`eigen`]) used by the MDS baseline,
//! * singular value decomposition and the Moore–Penrose pseudo-inverse
//!   ([`svd`]) used by the Proposition 1 orthogonalization,
//! * LU/Cholesky solvers ([`solve`]) used by the ADMM basis-pursuit solver,
//! * a matrix-free conjugate-gradient solver ([`cg`]) for city-scale
//!   grids where factoring is too expensive,
//! * runtime-dispatched unrolled kernels ([`kernels`]) behind the hot
//!   `Matrix`/[`vector`] operations — bit-identical to the reference
//!   loops, with `CROWDWIFI_FORCE_SCALAR=1` pinning the scalar path.
//!
//! Everything is hand-rolled on `f64` — the problem sizes in the paper
//! (grids of `N ≤ ~1000` points, windows of `M ≤ ~200` measurements) are
//! comfortably in dense-kernel territory, and the repro brief forbids
//! pulling in an external linear-algebra crate.
//!
//! # Example
//!
//! ```
//! use crowdwifi_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = a.matmul(&a.transpose());
//! assert_eq!(b.get(0, 0), 5.0);
//! ```

#![deny(missing_docs)]

pub mod cg;
pub mod eigen;
pub mod kernels;
pub mod matrix;
pub mod qr;
pub mod solve;
pub mod svd;
pub mod vector;

pub use eigen::SymmetricEigen;
pub use matrix::Matrix;
pub use qr::QrDecomposition;
pub use svd::Svd;

/// Errors produced by linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected shape relation.
        expected: String,
        /// Human-readable description of what was supplied.
        found: String,
    },
    /// The matrix is singular (or numerically so) and cannot be factored
    /// or inverted.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// An iterative kernel failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input is empty where a non-empty operand is required.
    Empty,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            LinalgError::Empty => write!(f, "empty operand"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
