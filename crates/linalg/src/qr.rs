//! Householder QR decomposition, least squares and orthonormal bases.

// Index-based loops below mirror the textbook algorithms; iterator
// rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::matrix::Matrix;
use crate::vector;
use crate::{LinalgError, Result};

/// Relative tolerance used for rank decisions.
const RANK_TOL: f64 = 1e-10;

/// A thin QR decomposition `A = Q R` computed with Householder reflections.
///
/// For an `m × n` input with `p = min(m, n)`, `Q` is `m × p` with
/// orthonormal columns and `R` is `p × n` upper triangular (trapezoidal
/// when `m < n`).
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::{Matrix, QrDecomposition};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
/// let qr = QrDecomposition::new(&a);
/// let back = qr.q().matmul(qr.r());
/// assert!(back.approx_eq(&a, 1e-10));
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    q: Matrix,
    r: Matrix,
}

impl QrDecomposition {
    /// Computes the thin QR decomposition of `a`.
    pub fn new(a: &Matrix) -> Self {
        let m = a.rows();
        let n = a.cols();
        let p = m.min(n);

        // Working copy that is reduced to R in place; Householder vectors
        // are kept to accumulate the thin Q afterwards.
        let mut work = a.clone();
        let mut householders: Vec<Vec<f64>> = Vec::with_capacity(p);

        for k in 0..p {
            // Householder vector for column k, rows k..m.
            let mut v: Vec<f64> = (k..m).map(|r| work.get(r, k)).collect();
            let alpha = vector::norm2(&v);
            if alpha == 0.0 {
                householders.push(Vec::new());
                continue;
            }
            let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
            v[0] += sign * alpha;
            let vnorm = vector::norm2(&v);
            if vnorm == 0.0 {
                householders.push(Vec::new());
                continue;
            }
            for x in v.iter_mut() {
                *x /= vnorm;
            }
            // Apply H = I - 2 v vᵀ to the trailing block of `work`.
            for c in k..n {
                let mut proj = 0.0;
                for (i, &vi) in v.iter().enumerate() {
                    proj += vi * work.get(k + i, c);
                }
                proj *= 2.0;
                for (i, &vi) in v.iter().enumerate() {
                    let cur = work.get(k + i, c);
                    work.set(k + i, c, cur - proj * vi);
                }
            }
            householders.push(v);
        }

        // R: top p rows of the reduced working matrix, zeroing round-off
        // below the diagonal.
        let mut r = Matrix::zeros(p, n);
        for i in 0..p {
            for j in i..n {
                r.set(i, j, work.get(i, j));
            }
        }

        // Thin Q: apply the reflections in reverse to the first p columns
        // of the identity.
        let mut q = Matrix::zeros(m, p);
        for c in 0..p {
            q.set(c, c, 1.0);
        }
        for k in (0..p).rev() {
            let v = &householders[k];
            if v.is_empty() {
                continue;
            }
            for c in 0..p {
                let mut proj = 0.0;
                for (i, &vi) in v.iter().enumerate() {
                    proj += vi * q.get(k + i, c);
                }
                proj *= 2.0;
                for (i, &vi) in v.iter().enumerate() {
                    let cur = q.get(k + i, c);
                    q.set(k + i, c, cur - proj * vi);
                }
            }
        }

        QrDecomposition { q, r }
    }

    /// The orthonormal factor `Q` (`m × min(m, n)`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`min(m, n) × n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Numerical rank estimated from the diagonal of `R`.
    pub fn rank(&self) -> usize {
        let p = self.r.rows().min(self.r.cols());
        let max_diag = (0..p).fold(0.0_f64, |m, i| m.max(self.r.get(i, i).abs()));
        if max_diag == 0.0 {
            return 0;
        }
        (0..p)
            .filter(|&i| self.r.get(i, i).abs() > RANK_TOL * max_diag)
            .count()
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂` for tall or
    /// square full-rank `A`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// row count of `A`, and [`LinalgError::Singular`] if `R` is rank
    /// deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.q.rows();
        let p = self.q.cols();
        let n = self.r.cols();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rhs of length {m}"),
                found: format!("length {}", b.len()),
            });
        }
        if n > p {
            // Underdetermined systems are handled by `Svd::pseudo_inverse`.
            return Err(LinalgError::Singular);
        }
        // x solves R x = Qᵀ b by back substitution.
        let qtb = self.q.matvec_transposed(b);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let diag = self.r.get(i, i);
            if diag.abs() <= RANK_TOL * self.r.max_abs() || diag == 0.0 {
                return Err(LinalgError::Singular);
            }
            let mut s = qtb[i];
            for j in (i + 1)..n {
                s -= self.r.get(i, j) * x[j];
            }
            x[i] = s / diag;
        }
        Ok(x)
    }
}

/// Returns a matrix whose columns are an orthonormal basis of the column
/// space of `a` — the `orth(·)` operator of Proposition 1 in the paper.
///
/// Uses modified Gram–Schmidt with one reorthogonalization pass; columns
/// whose residual norm falls below a relative tolerance are dropped, so the
/// result has exactly `rank(a)` columns.
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::{Matrix, qr::orth};
///
/// // Second column is a multiple of the first: rank 1.
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
/// let q = orth(&a);
/// assert_eq!(q.cols(), 1);
/// ```
pub fn orth(a: &Matrix) -> Matrix {
    let m = a.rows();
    let n = a.cols();
    let scale = a.max_abs();
    if scale == 0.0 {
        return Matrix::zeros(m, 0);
    }
    let tol = RANK_TOL * scale * (m.max(n) as f64);

    let mut basis: Vec<Vec<f64>> = Vec::new();
    for c in 0..n {
        let mut v = a.col(c);
        // Two Gram–Schmidt passes for numerical robustness.
        for _ in 0..2 {
            for q in &basis {
                let proj = vector::dot(q, &v);
                vector::axpy(-proj, q, &mut v);
            }
        }
        let nv = vector::norm2(&v);
        if nv > tol {
            for x in v.iter_mut() {
                *x /= nv;
            }
            basis.push(v);
        }
        if basis.len() == m {
            break;
        }
    }

    let mut q = Matrix::zeros(m, basis.len());
    for (c, col) in basis.iter().enumerate() {
        for (r, &x) in col.iter().enumerate() {
            q.set(r, c, x);
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstructs(a: &Matrix) {
        let qr = QrDecomposition::new(a);
        assert!(
            qr.q().matmul(qr.r()).approx_eq(a, 1e-9),
            "QR failed to reconstruct {a}"
        );
        // Qᵀ Q = I.
        let qtq = qr.q().transpose().matmul(qr.q());
        assert!(qtq.approx_eq(&Matrix::identity(qr.q().cols()), 1e-9));
    }

    #[test]
    fn qr_reconstructs_tall_square_wide() {
        reconstructs(&Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        reconstructs(&Matrix::from_rows(&[&[2.0, -1.0], &[1.0, 3.0]]));
        reconstructs(&Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
    }

    #[test]
    fn qr_rank_detects_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert_eq!(QrDecomposition::new(&a).rank(), 1);
        let b = Matrix::identity(3);
        assert_eq!(QrDecomposition::new(&b).rank(), 3);
    }

    #[test]
    fn least_squares_exact_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = [1.0, -2.0];
        let b = a.matvec(&x_true);
        let x = QrDecomposition::new(&a).solve_least_squares(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_matches_normal_equations() {
        // Fit y = a + b t over 4 samples.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [1.0, 2.9, 5.1, 7.0];
        let x = QrDecomposition::new(&a).solve_least_squares(&b).unwrap();
        // Residual must be orthogonal to the columns of A.
        let r = vector::sub(&a.matvec(&x), &b);
        for c in 0..2 {
            assert!(vector::dot(&a.col(c), &r).abs() < 1e-9);
        }
    }

    #[test]
    fn least_squares_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(
            QrDecomposition::new(&a).solve_least_squares(&[1.0, 1.0]),
            Err(LinalgError::Singular)
        );
    }

    #[test]
    fn orth_full_rank_spans_input() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0], &[1.0, 0.0]]);
        let q = orth(&a);
        assert_eq!(q.cols(), 2);
        // Columns of a must be reproducible from q: a = q (qᵀ a).
        let proj = q.matmul(&q.transpose().matmul(&a));
        assert!(proj.approx_eq(&a, 1e-9));
    }

    #[test]
    fn orth_zero_matrix_is_empty() {
        assert_eq!(orth(&Matrix::zeros(3, 2)).cols(), 0);
    }
}
