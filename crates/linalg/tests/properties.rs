//! Property-based tests for the linear-algebra kernels.

use crowdwifi_linalg::qr::orth;
use crowdwifi_linalg::solve::{Cholesky, Lu};
use crowdwifi_linalg::svd::pseudo_inverse;
use crowdwifi_linalg::{Matrix, QrDecomposition, Svd, SymmetricEigen};
use proptest::prelude::*;

/// Small well-scaled matrix entries.
fn entry() -> impl Strategy<Value = f64> {
    (-10.0..10.0f64).prop_map(|x| (x * 16.0).round() / 16.0)
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(entry(), rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| matrix(r, c))) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_transpose(m in matrix(4, 3)) {
        // (A Aᵀ)ᵀ = A Aᵀ (symmetry of Gram matrices).
        let g = m.matmul(&m.transpose());
        prop_assert!(g.transpose().approx_eq(&g, 1e-9));
    }

    #[test]
    fn qr_reconstructs(m in (1usize..7, 1usize..7).prop_flat_map(|(r, c)| matrix(r, c))) {
        let qr = QrDecomposition::new(&m);
        prop_assert!(qr.q().matmul(qr.r()).approx_eq(&m, 1e-8));
        let qtq = qr.q().transpose().matmul(qr.q());
        prop_assert!(qtq.approx_eq(&Matrix::identity(qr.q().cols()), 1e-8));
    }

    #[test]
    fn eigen_reconstructs_gram(m in matrix(5, 3)) {
        let g = m.transpose().matmul(&m);
        let e = SymmetricEigen::new(&g).unwrap();
        let lam = Matrix::diagonal(e.eigenvalues());
        let back = e.eigenvectors().matmul(&lam).matmul(&e.eigenvectors().transpose());
        prop_assert!(back.approx_eq(&g, 1e-6 * (1.0 + g.max_abs())));
        // Gram matrices are PSD: eigenvalues non-negative up to round-off.
        for &l in e.eigenvalues() {
            prop_assert!(l > -1e-8 * (1.0 + g.max_abs()));
        }
    }

    #[test]
    fn svd_reconstructs(m in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| matrix(r, c))) {
        let svd = Svd::new(&m).unwrap();
        let sigma = Matrix::diagonal(svd.singular_values());
        let back = svd.u().matmul(&sigma).matmul(&svd.v().transpose());
        prop_assert!(back.approx_eq(&m, 1e-6 * (1.0 + m.max_abs())));
    }

    #[test]
    fn pinv_penrose_one(m in (1usize..5, 1usize..5).prop_flat_map(|(r, c)| matrix(r, c))) {
        let p = pseudo_inverse(&m).unwrap();
        // A A† A = A always holds, full rank or not.
        let back = m.matmul(&p).matmul(&m);
        prop_assert!(back.approx_eq(&m, 1e-5 * (1.0 + m.max_abs())));
    }

    #[test]
    fn orth_columns_are_orthonormal(m in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| matrix(r, c))) {
        let q = orth(&m);
        let qtq = q.transpose().matmul(&q);
        prop_assert!(qtq.approx_eq(&Matrix::identity(q.cols()), 1e-8));
        // Q spans col(A): projecting A onto span(Q) reproduces A.
        let proj = q.matmul(&q.transpose().matmul(&m));
        prop_assert!(proj.approx_eq(&m, 1e-6 * (1.0 + m.max_abs())));
    }

    #[test]
    fn lu_roundtrips_diagonally_dominant(data in proptest::collection::vec(entry(), 9), x in proptest::collection::vec(entry(), 3)) {
        // Force diagonal dominance so the system is well conditioned.
        let mut a = Matrix::from_vec(3, 3, data).unwrap();
        for i in 0..3 {
            let rowsum: f64 = (0..3).map(|j| a.get(i, j).abs()).sum();
            a.set(i, i, rowsum + 1.0);
        }
        let b = a.matvec(&x);
        let got = Lu::new(&a).unwrap().solve(&b).unwrap();
        for (g, t) in got.iter().zip(&x) {
            prop_assert!((g - t).abs() < 1e-7);
        }
    }

    #[test]
    fn cholesky_solves_spd(m in matrix(4, 3), x in proptest::collection::vec(entry(), 3)) {
        // AᵀA + I is always SPD.
        let mut g = m.transpose().matmul(&m);
        for i in 0..3 {
            g.set(i, i, g.get(i, i) + 1.0);
        }
        let b = g.matvec(&x);
        let got = Cholesky::new(&g).unwrap().solve(&b).unwrap();
        for (gv, t) in got.iter().zip(&x) {
            prop_assert!((gv - t).abs() < 1e-6);
        }
    }
}
