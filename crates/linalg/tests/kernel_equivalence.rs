//! Property tests pinning the vectorized kernels to the scalar
//! reference **bit for bit**.
//!
//! The dispatch contract of `crowdwifi_linalg::kernels` is that the
//! unrolled path is a pure layout optimization: per output element it
//! performs the same floating-point operations in the same order as the
//! scalar twin. These properties exercise that claim across the shapes
//! the closed-form unit tests cannot enumerate — empty matrices, odd
//! tail lengths (`n % 4 != 0`), and non-finite inputs (NaN propagation
//! is order-sensitive, so bitwise equality here is strictly stronger
//! than approximate equality on finite data).
//!
//! Comparisons use `f64::to_bits` so `-0.0` vs `0.0` differences are
//! caught — with one relaxation: every NaN is canonicalized to a single
//! bit pattern first. NaN *payload* bits are the one thing the kernels
//! cannot pin: LLVM documents NaN payloads as nondeterministic and
//! freely commutes `fadd`/`fmul`, so `NaN(0x7ff8…) + NaN(0xfff8…)` may
//! keep either operand's payload depending on which side codegen placed
//! it on. The properties therefore assert: identical values everywhere,
//! identical signed-zero and infinity bits, and NaN-iff-NaN.

use crowdwifi_linalg::kernels::{self, scalar, vector};
use proptest::prelude::*;

/// An element strategy that mixes ordinary magnitudes with the awkward
/// cases: signed zeros, infinities, NaN, and subnormal-adjacent tiny
/// values.
fn wild() -> impl Strategy<Value = f64> {
    (0u64..16, -100.0..100.0f64).prop_map(|(tag, x)| match tag {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => 1e-308,
        _ => x,
    })
}

/// A `rows × cols` row-major buffer with both dimensions drawn from
/// `0..=8` (covering empty matrices and every unroll-tail residue).
fn matrix() -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
    (0usize..9, 0usize..9).prop_flat_map(|(rows, cols)| {
        (
            Just(rows),
            Just(cols),
            proptest::collection::vec(wild(), rows * cols),
        )
    })
}

/// `to_bits` with every NaN collapsed to the canonical quiet NaN (see
/// the module docs for why payload bits cannot be asserted).
fn canon(x: f64) -> u64 {
    if x.is_nan() {
        f64::NAN.to_bits()
    } else {
        x.to_bits()
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|&x| canon(x)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dot_matches_bitwise(
        pair in (0usize..18).prop_flat_map(|n| {
            (
                proptest::collection::vec(wild(), n),
                proptest::collection::vec(wild(), n),
            )
        })
    ) {
        let (a, b) = pair;
        prop_assert_eq!(
            canon(scalar::dot(&a, &b)),
            canon(vector::dot(&a, &b)),
            "dot diverged on len {}", a.len()
        );
    }

    #[test]
    fn distance_sq_matches_bitwise(
        pair in (0usize..18).prop_flat_map(|n| {
            (
                proptest::collection::vec(wild(), n),
                proptest::collection::vec(wild(), n),
            )
        })
    ) {
        let (a, b) = pair;
        prop_assert_eq!(
            canon(scalar::distance_sq(&a, &b)),
            canon(vector::distance_sq(&a, &b)),
            "distance_sq diverged on len {}", a.len()
        );
    }

    #[test]
    fn axpy_matches_bitwise(
        case in (0usize..18).prop_flat_map(|n| {
            (
                wild(),
                proptest::collection::vec(wild(), n),
                proptest::collection::vec(wild(), n),
            )
        })
    ) {
        let (alpha, x, y0) = case;
        let mut ys = y0.clone();
        let mut yv = y0;
        scalar::axpy(alpha, &x, &mut ys);
        vector::axpy(alpha, &x, &mut yv);
        prop_assert_eq!(bits(&ys), bits(&yv), "axpy diverged on len {}", x.len());
    }

    #[test]
    fn matvec_matches_bitwise(
        case in matrix().prop_flat_map(|(rows, cols, a)| {
            (
                Just(rows),
                Just(cols),
                Just(a),
                proptest::collection::vec(wild(), cols),
            )
        })
    ) {
        let (rows, cols, a, v) = case;
        let mut os = vec![0.0; rows];
        let mut ov = vec![0.0; rows];
        scalar::matvec(cols, &a, &v, &mut os);
        vector::matvec(cols, &a, &v, &mut ov);
        prop_assert_eq!(bits(&os), bits(&ov), "matvec diverged on {}x{}", rows, cols);
    }

    #[test]
    fn acc_rows_matches_bitwise(
        case in matrix().prop_flat_map(|(rows, cols, a)| {
            (
                Just(rows),
                Just(cols),
                Just(a),
                proptest::collection::vec(wild(), rows),
                proptest::collection::vec(wild(), cols),
            )
        })
    ) {
        let (rows, cols, a, v, out0) = case;
        let mut os = out0.clone();
        let mut ov = out0;
        scalar::acc_rows(cols, &a, &v, &mut os);
        vector::acc_rows(cols, &a, &v, &mut ov);
        prop_assert_eq!(bits(&os), bits(&ov), "acc_rows diverged on {}x{}", rows, cols);
    }

    #[test]
    fn gram_matches_bitwise(m in matrix()) {
        let (rows, cols, a) = m;
        let mut gs = vec![0.0; cols * cols];
        let mut gv = vec![0.0; cols * cols];
        scalar::gram(rows, cols, &a, &mut gs);
        vector::gram(rows, cols, &a, &mut gv);
        prop_assert_eq!(bits(&gs), bits(&gv), "gram diverged on {}x{}", rows, cols);
    }

    #[test]
    fn matmul_matches_bitwise(
        case in (0usize..7, 0usize..7, 0usize..7).prop_flat_map(|(rows, k, cols)| {
            (
                Just(rows),
                Just(k),
                Just(cols),
                proptest::collection::vec(wild(), rows * k),
                proptest::collection::vec(wild(), k * cols),
            )
        })
    ) {
        let (rows, k, cols, a, b) = case;
        let mut os = vec![0.0; rows * cols];
        let mut ov = vec![0.0; rows * cols];
        scalar::matmul(rows, k, cols, &a, &b, &mut os);
        vector::matmul(rows, k, cols, &a, &b, &mut ov);
        prop_assert_eq!(
            bits(&os), bits(&ov),
            "matmul diverged on {}x{}x{}", rows, k, cols
        );
    }

    // The batch entry points promise per-column bit-identity with the
    // one-vector kernels *under whichever dispatch mode is active* —
    // asserted here without touching the global mode, so the property
    // holds for both paths when tier-1 re-runs this suite under
    // `CROWDWIFI_FORCE_SCALAR=1`.

    #[test]
    fn matvec_batch_matches_singles_bitwise(
        case in matrix().prop_flat_map(|(rows, cols, a)| {
            (
                Just(rows),
                Just(cols),
                Just(a),
                proptest::collection::vec(
                    proptest::collection::vec(wild(), cols),
                    0..4,
                ),
            )
        })
    ) {
        let (rows, cols, a, vs) = case;
        let mut outs: Vec<Vec<f64>> = vec![Vec::new(); vs.len()];
        kernels::matvec_batch(rows, cols, &a, &vs, &mut outs);
        for (v, out) in vs.iter().zip(&outs) {
            let mut solo = vec![0.0; rows];
            kernels::matvec(cols, &a, v, &mut solo);
            prop_assert_eq!(
                bits(out), bits(&solo),
                "matvec_batch column diverged on {}x{}", rows, cols
            );
        }
    }

    #[test]
    fn acc_rows_batch_matches_singles_bitwise(
        case in matrix().prop_flat_map(|(rows, cols, a)| {
            (
                Just(rows),
                Just(cols),
                Just(a),
                proptest::collection::vec(
                    proptest::collection::vec(wild(), rows),
                    0..4,
                ),
                proptest::collection::vec(wild(), cols),
            )
        })
    ) {
        let (rows, cols, a, vs, out0) = case;
        let mut outs: Vec<Vec<f64>> = vec![out0.clone(); vs.len()];
        kernels::acc_rows_batch(rows, cols, &a, &vs, &mut outs);
        for (v, out) in vs.iter().zip(&outs) {
            let mut solo = out0.clone();
            kernels::acc_rows(cols, &a, v, &mut solo);
            prop_assert_eq!(
                bits(out), bits(&solo),
                "acc_rows_batch column diverged on {}x{}", rows, cols
            );
        }
    }
}
