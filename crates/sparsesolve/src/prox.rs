//! Proximal operators shared by the iterative solvers.

/// Scalar soft-thresholding operator
/// `S_t(x) = sign(x) · max(|x| − t, 0)`, the proximal map of `t‖·‖₁`.
///
/// # Example
///
/// ```
/// use crowdwifi_sparsesolve::prox::soft_threshold;
///
/// assert_eq!(soft_threshold(3.0, 1.0), 2.0);
/// assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
/// assert_eq!(soft_threshold(0.5, 1.0), 0.0);
/// ```
#[inline]
pub fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

/// Non-negative soft threshold `max(x − t, 0)`; the proximal map of
/// `t‖·‖₁ + ι_{x ≥ 0}`.
///
/// The AP indicator coefficients of the CrowdWiFi recovery are
/// non-negative by construction (a grid point either hosts an AP or not),
/// so the pipeline solves the non-negativity-constrained program.
#[inline]
pub fn soft_threshold_nonneg(x: f64, t: f64) -> f64 {
    (x - t).max(0.0)
}

/// Applies [`soft_threshold`] element-wise in place.
pub fn soft_threshold_vec(v: &mut [f64], t: f64) {
    for x in v.iter_mut() {
        *x = soft_threshold(*x, t);
    }
}

/// Applies [`soft_threshold_nonneg`] element-wise in place.
pub fn soft_threshold_nonneg_vec(v: &mut [f64], t: f64) {
    for x in v.iter_mut() {
        *x = soft_threshold_nonneg(*x, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_threshold_is_identity() {
        assert_eq!(soft_threshold(1.5, 0.0), 1.5);
        assert_eq!(soft_threshold(-1.5, 0.0), -1.5);
    }

    #[test]
    fn nonneg_clamps_negative_inputs() {
        assert_eq!(soft_threshold_nonneg(-5.0, 1.0), 0.0);
        assert_eq!(soft_threshold_nonneg(5.0, 1.0), 4.0);
    }

    #[test]
    fn vector_variants_match_scalar() {
        let mut v = [3.0, -0.5, -2.0];
        soft_threshold_vec(&mut v, 1.0);
        assert_eq!(v, [2.0, 0.0, -1.0]);
        let mut w = [3.0, -0.5, -2.0];
        soft_threshold_nonneg_vec(&mut w, 1.0);
        assert_eq!(w, [2.0, 0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn shrinks_toward_zero(x in -100.0..100.0f64, t in 0.0..10.0f64) {
            let s = soft_threshold(x, t);
            // Never overshoots zero and never grows magnitude.
            prop_assert!(s.abs() <= x.abs());
            prop_assert!(s * x >= 0.0);
            // Exact shrink amount when outside the dead zone.
            if x.abs() > t {
                prop_assert!((s.abs() - (x.abs() - t)).abs() < 1e-12);
            } else {
                prop_assert_eq!(s, 0.0);
            }
        }

        #[test]
        fn nonneg_is_nonneg(x in -100.0..100.0f64, t in 0.0..10.0f64) {
            prop_assert!(soft_threshold_nonneg(x, t) >= 0.0);
        }
    }
}
