//! Proximal operators shared by the iterative solvers.
//!
//! # Non-finite inputs
//!
//! The operators propagate non-finite *arguments* instead of silently
//! clamping them: a `NaN` coefficient stays `NaN` and `±∞` shrinks to
//! `±∞` (`+∞` for the non-negative variant; `−∞` projects to `0`,
//! which is the correct projection onto the non-negative orthant).
//! Silent clamping — the old behaviour of the comparison chain, where
//! `NaN` fell through every branch to `0.0` — would hide a divergent
//! solver iterate as a plausible sparse zero. The *threshold* `t`, by
//! contrast, is solver-computed (`step · λ`); a non-finite or negative
//! `t` is always a solver bug and is rejected with a `debug_assert`.

/// Scalar soft-thresholding operator
/// `S_t(x) = sign(x) · max(|x| − t, 0)`, the proximal map of `t‖·‖₁`.
///
/// `NaN` and `±∞` values of `x` propagate (see the module docs).
///
/// # Panics
///
/// Debug builds panic when the threshold `t` is negative or non-finite.
///
/// # Example
///
/// ```
/// use crowdwifi_sparsesolve::prox::soft_threshold;
///
/// assert_eq!(soft_threshold(3.0, 1.0), 2.0);
/// assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
/// assert_eq!(soft_threshold(0.5, 1.0), 0.0);
/// assert!(soft_threshold(f64::NAN, 1.0).is_nan());
/// ```
#[inline]
pub fn soft_threshold(x: f64, t: f64) -> f64 {
    debug_assert!(
        t >= 0.0 && t.is_finite(),
        "soft_threshold: invalid threshold {t}"
    );
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else if x.is_nan() {
        // Explicit propagation: NaN compares false against every
        // threshold and would otherwise silently clamp to 0.
        x
    } else {
        0.0
    }
}

/// Non-negative soft threshold `max(x − t, 0)`; the proximal map of
/// `t‖·‖₁ + ι_{x ≥ 0}`.
///
/// The AP indicator coefficients of the CrowdWiFi recovery are
/// non-negative by construction (a grid point either hosts an AP or not),
/// so the pipeline solves the non-negativity-constrained program.
///
/// `NaN` inputs propagate; `+∞` maps to `+∞` and `−∞` to `0` (the
/// projection onto the orthant — see the module docs).
///
/// # Panics
///
/// Debug builds panic when the threshold `t` is negative or non-finite.
#[inline]
pub fn soft_threshold_nonneg(x: f64, t: f64) -> f64 {
    debug_assert!(
        t >= 0.0 && t.is_finite(),
        "soft_threshold_nonneg: invalid threshold {t}"
    );
    if x.is_nan() {
        // `f64::max` would resolve NaN against 0.0 to 0.0 — silent loss
        // of a divergence signal.
        return x;
    }
    (x - t).max(0.0)
}

/// Applies [`soft_threshold`] element-wise in place.
pub fn soft_threshold_vec(v: &mut [f64], t: f64) {
    for x in v.iter_mut() {
        *x = soft_threshold(*x, t);
    }
}

/// Applies [`soft_threshold_nonneg`] element-wise in place.
pub fn soft_threshold_nonneg_vec(v: &mut [f64], t: f64) {
    for x in v.iter_mut() {
        *x = soft_threshold_nonneg(*x, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_threshold_is_identity() {
        assert_eq!(soft_threshold(1.5, 0.0), 1.5);
        assert_eq!(soft_threshold(-1.5, 0.0), -1.5);
    }

    #[test]
    fn nonneg_clamps_negative_inputs() {
        assert_eq!(soft_threshold_nonneg(-5.0, 1.0), 0.0);
        assert_eq!(soft_threshold_nonneg(5.0, 1.0), 4.0);
    }

    #[test]
    fn vector_variants_match_scalar() {
        let mut v = [3.0, -0.5, -2.0];
        soft_threshold_vec(&mut v, 1.0);
        assert_eq!(v, [2.0, 0.0, -1.0]);
        let mut w = [3.0, -0.5, -2.0];
        soft_threshold_nonneg_vec(&mut w, 1.0);
        assert_eq!(w, [2.0, 0.0, 0.0]);
    }

    #[test]
    fn nan_inputs_propagate() {
        assert!(soft_threshold(f64::NAN, 1.0).is_nan());
        assert!(soft_threshold_nonneg(f64::NAN, 1.0).is_nan());
        let mut v = [1.0, f64::NAN, -3.0];
        soft_threshold_vec(&mut v, 0.5);
        assert_eq!(v[0], 0.5);
        assert!(v[1].is_nan());
        assert_eq!(v[2], -2.5);
        let mut w = [1.0, f64::NAN];
        soft_threshold_nonneg_vec(&mut w, 0.5);
        assert!(w[1].is_nan());
    }

    #[test]
    fn infinities_shrink_to_infinities() {
        assert_eq!(soft_threshold(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(soft_threshold(f64::NEG_INFINITY, 1.0), f64::NEG_INFINITY);
        assert_eq!(soft_threshold_nonneg(f64::INFINITY, 1.0), f64::INFINITY);
        // −∞ projects onto the non-negative orthant.
        assert_eq!(soft_threshold_nonneg(f64::NEG_INFINITY, 1.0), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid threshold")]
    fn negative_threshold_is_rejected_in_debug() {
        soft_threshold(1.0, -0.5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid threshold")]
    fn nan_threshold_is_rejected_in_debug() {
        soft_threshold_nonneg(1.0, f64::NAN);
    }

    proptest! {
        #[test]
        fn shrinks_toward_zero(x in -100.0..100.0f64, t in 0.0..10.0f64) {
            let s = soft_threshold(x, t);
            // Never overshoots zero and never grows magnitude.
            prop_assert!(s.abs() <= x.abs());
            prop_assert!(s * x >= 0.0);
            // Exact shrink amount when outside the dead zone.
            if x.abs() > t {
                prop_assert!((s.abs() - (x.abs() - t)).abs() < 1e-12);
            } else {
                prop_assert_eq!(s, 0.0);
            }
        }

        #[test]
        fn nonneg_is_nonneg(x in -100.0..100.0f64, t in 0.0..10.0f64) {
            prop_assert!(soft_threshold_nonneg(x, t) >= 0.0);
        }
    }
}
