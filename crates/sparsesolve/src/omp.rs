//! Orthogonal matching pursuit — a greedy sparse-recovery baseline.
//!
//! OMP repeatedly picks the column most correlated with the residual and
//! re-fits by least squares over the selected atoms. It is much cheaper
//! than the convex programs and serves both as a cross-check in tests and
//! as an ablation point in the benches (greedy vs ℓ1 inside the CrowdWiFi
//! pipeline).

use crate::{validate_problem, Recovery, Result, SolverError, SparseRecovery};
use crowdwifi_linalg::vector;
use crowdwifi_linalg::{Matrix, QrDecomposition};

/// Orthogonal matching pursuit solver.
///
/// Stops when `max_atoms` columns are selected or the residual norm falls
/// below `residual_tolerance · ‖y‖₂`.
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::Matrix;
/// use crowdwifi_sparsesolve::{omp::Omp, SparseRecovery};
///
/// let a = Matrix::identity(4);
/// let rec = Omp::new(2).recover(&a, &[0.0, 3.0, 0.0, 0.0])?;
/// assert_eq!(rec.support(0.5), vec![1]);
/// # Ok::<(), crowdwifi_sparsesolve::SolverError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Omp {
    max_atoms: usize,
    residual_tolerance: f64,
}

impl Omp {
    /// Creates an OMP solver selecting at most `max_atoms` columns.
    pub fn new(max_atoms: usize) -> Self {
        Omp {
            max_atoms: max_atoms.max(1),
            residual_tolerance: 1e-6,
        }
    }

    /// Sets the relative residual stopping tolerance (default `1e-6`).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidParameter`] for negative values.
    pub fn with_residual_tolerance(mut self, tol: f64) -> Result<Self> {
        if tol < 0.0 {
            return Err(SolverError::InvalidParameter {
                name: "residual_tolerance",
                reason: format!("must be non-negative, got {tol}"),
            });
        }
        self.residual_tolerance = tol;
        Ok(self)
    }
}

impl SparseRecovery for Omp {
    fn recover(&self, a: &Matrix, y: &[f64]) -> Result<Recovery> {
        validate_problem(a, y)?;
        let n = a.cols();
        let m = a.rows();
        let ynorm = vector::norm2(y);

        let mut selected: Vec<usize> = Vec::new();
        let mut residual = y.to_vec();
        let mut coeffs: Vec<f64> = Vec::new();
        let budget = self.max_atoms.min(m).min(n);
        let mut iterations = 0;

        // Column norms for normalized correlation (guard zero columns).
        let col_norms: Vec<f64> = (0..n).map(|c| vector::norm2(&a.col(c))).collect();

        while selected.len() < budget {
            if vector::norm2(&residual) <= self.residual_tolerance * ynorm.max(1e-300) {
                break;
            }
            iterations += 1;
            // Most correlated unselected column.
            let corr = a.matvec_transposed(&residual);
            let mut best: Option<(usize, f64)> = None;
            for (c, &x) in corr.iter().enumerate() {
                if selected.contains(&c) || col_norms[c] == 0.0 {
                    continue;
                }
                let score = x.abs() / col_norms[c];
                if best.is_none_or(|(_, b)| score > b) {
                    best = Some((c, score));
                }
            }
            let Some((best_col, best_score)) = best else {
                break;
            };
            if best_score == 0.0 {
                break;
            }
            selected.push(best_col);

            // Least-squares refit on the selected atoms.
            let sub = a.select_cols(&selected);
            let qr = QrDecomposition::new(&sub);
            match qr.solve_least_squares(y) {
                Ok(c) => coeffs = c,
                Err(_) => {
                    // Newly added atom made the subproblem singular —
                    // drop it and stop.
                    selected.pop();
                    break;
                }
            }
            let fitted = sub.matvec(&coeffs);
            residual = vector::sub(y, &fitted);
        }

        let mut solution = vec![0.0; n];
        for (&idx, &c) in selected.iter().zip(&coeffs) {
            solution[idx] = c;
        }
        let residual_norm = vector::norm2(&residual);
        Ok(Recovery {
            solution,
            iterations,
            residual_norm,
            converged: residual_norm <= self.residual_tolerance * ynorm.max(1e-300)
                || selected.len() == budget,
            // OMP is budget-driven, not tolerance-driven: neither
            // screening nor early-stopping headroom applies.
            screened_cols: 0,
            iterations_saved: 0,
        })
    }

    fn name(&self) -> &'static str {
        "omp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bernoulli_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let scale = 1.0 / (m as f64).sqrt();
        Matrix::from_fn(m, n, |_, _| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            if (state.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1 == 1 {
                scale
            } else {
                -scale
            }
        })
    }

    #[test]
    fn exact_recovery_with_orthogonal_columns() {
        let a = Matrix::identity(6);
        let y = [0.0, 0.0, 2.0, 0.0, -1.0, 0.0];
        let rec = Omp::new(3).recover(&a, &y).unwrap();
        assert!((rec.solution[2] - 2.0).abs() < 1e-12);
        assert!((rec.solution[4] + 1.0).abs() < 1e-12);
        assert!(rec.residual_norm < 1e-10);
    }

    #[test]
    fn recovers_random_sparse_signal() {
        let (m, n) = (20, 60);
        let a = bernoulli_matrix(m, n, 17);
        let mut theta = vec![0.0; n];
        theta[12] = 1.0;
        theta[45] = 2.0;
        let y = a.matvec(&theta);
        let rec = Omp::new(2).recover(&a, &y).unwrap();
        let mut supp = rec.support(0.3);
        supp.sort_unstable();
        assert_eq!(supp, vec![12, 45]);
        assert!(vector::distance(&rec.solution, &theta) < 1e-8);
    }

    #[test]
    fn atom_budget_respected() {
        let a = bernoulli_matrix(10, 30, 23);
        let mut theta = vec![0.0; 30];
        for i in [1, 5, 9, 13] {
            theta[i] = 1.0;
        }
        let y = a.matvec(&theta);
        let rec = Omp::new(2).recover(&a, &y).unwrap();
        assert!(rec.support(1e-9).len() <= 2);
    }

    #[test]
    fn zero_rhs_selects_nothing() {
        let a = bernoulli_matrix(8, 16, 2);
        let rec = Omp::new(4).recover(&a, &[0.0; 8]).unwrap();
        assert!(rec.solution.iter().all(|&x| x == 0.0));
        assert!(rec.converged);
    }

    #[test]
    fn rejects_negative_tolerance() {
        assert!(Omp::new(2).with_residual_tolerance(-1.0).is_err());
    }
}
