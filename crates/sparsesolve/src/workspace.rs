//! Reusable scratch space for the iterative solvers.

/// Reusable buffers for [`crate::SparseRecovery::recover_with`].
///
/// The iterative solvers (FISTA/ISTA, ADMM LASSO, basis pursuit, IRLS)
/// keep several solution-sized vectors alive across iterations;
/// historically each iteration *cloned* them — FISTA alone allocated
/// four fresh vectors per step, ~8000 heap allocations for a default
/// 2000-iteration solve. A `SolverWorkspace` owns those buffers so the
/// thousands of small recoveries in one sliding-window round reuse a
/// single set of allocations.
///
/// Buffers are cleared and resized on entry to every solve, so one
/// workspace serves problems of any (and varying) shape, and a solve
/// never observes stale data from a previous one. Routing a solver
/// through a workspace changes *where* intermediates live, never the
/// arithmetic: `recover` and `recover_with` return bit-identical
/// [`crate::Recovery`] values — unless a warm-start seed is pending
/// (see [`SolverWorkspace::set_warm_start`]), which deliberately
/// changes the iterate *path* (never the optimum being approximated).
///
/// Buffer roles are loose by design — `x`/`x_alt` double as the
/// current/next iterate swap pair, `m_scratch`/`m_scratch2` hold
/// measurement-length intermediates like `Az` and residuals — because
/// each solver family needs a slightly different mix.
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    /// Current iterate (solution-length).
    pub(crate) x: Vec<f64>,
    /// Swap partner for `x`: the next iterate or a previous-iterate
    /// snapshot, depending on the solver.
    pub(crate) x_alt: Vec<f64>,
    /// ADMM splitting variable / FISTA extrapolation point.
    pub(crate) z: Vec<f64>,
    /// ADMM scaled dual variable.
    pub(crate) u: Vec<f64>,
    /// Gradient / correction vector (solution-length).
    pub(crate) grad: Vec<f64>,
    /// Generic solution-length scratch (rhs, weights, snapshots).
    pub(crate) n_scratch: Vec<f64>,
    /// Measurement-length scratch (`Az`, dual iterates).
    pub(crate) m_scratch: Vec<f64>,
    /// Second measurement-length scratch (residuals).
    pub(crate) m_scratch2: Vec<f64>,
    /// Pending warm-start seed (see [`SolverWorkspace::set_warm_start`]).
    warm: Vec<f64>,
    /// Whether `warm` holds a seed for the next solve.
    warm_set: bool,
}

impl SolverWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the *next* warm-start-capable solve (`Fista`, `AdmmLasso`)
    /// from `x0` instead of the zero vector — the cross-window reuse
    /// hook of the CS pipeline, where 75% reading overlap makes the
    /// previous window's solution an excellent starting iterate.
    ///
    /// The seed is consumed by exactly one solve and then cleared. A
    /// seed whose length does not match the problem's column count, or
    /// a solver without warm-start support, discards it silently; the
    /// solve then starts cold as usual. Non-finite seed entries are
    /// treated as zero by the consumers.
    pub fn set_warm_start(&mut self, x0: &[f64]) {
        self.warm.clear();
        self.warm.extend_from_slice(x0);
        self.warm_set = true;
    }

    /// Whether a warm-start seed is pending for the next solve.
    pub fn has_warm_start(&self) -> bool {
        self.warm_set
    }

    /// Drops any pending warm-start seed (batched solves always start
    /// cold — a seed is inherently per-column).
    pub(crate) fn clear_warm_start(&mut self) {
        self.warm_set = false;
    }

    /// Consumes the pending seed if it matches a problem with `n`
    /// columns. Always clears the pending flag.
    pub(crate) fn take_warm_start(&mut self, n: usize) -> Option<Vec<f64>> {
        if !self.warm_set {
            return None;
        }
        self.warm_set = false;
        if self.warm.len() == n {
            Some(std::mem::take(&mut self.warm))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admm::{AdmmLasso, BasisPursuit};
    use crate::fista::{Acceleration, Fista};
    use crate::irls::Irls;
    use crate::omp::Omp;
    use crate::{AnySolver, SparseRecovery};
    use crowdwifi_linalg::Matrix;

    fn bernoulli_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let scale = 1.0 / (m as f64).sqrt();
        Matrix::from_fn(m, n, |_, _| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            if (state.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1 == 1 {
                scale
            } else {
                -scale
            }
        })
    }

    fn problem(m: usize, n: usize, seed: u64, support: &[usize]) -> (Matrix, Vec<f64>) {
        let a = bernoulli_matrix(m, n, seed);
        let mut theta = vec![0.0; n];
        for &j in support {
            theta[j] = 1.0;
        }
        let y = a.matvec(&theta);
        (a, y)
    }

    /// The workspace contract: `recover_with` on a *reused* (dirty,
    /// differently-sized) workspace returns bit-identical results to a
    /// fresh `recover`, for every solver family.
    #[test]
    fn reused_workspace_is_bit_identical_to_fresh_recover() {
        let solvers = [
            AnySolver::Fista(Fista::default()),
            AnySolver::Fista(Fista::default().with_acceleration(Acceleration::None)),
            AnySolver::AdmmLasso(AdmmLasso::default()),
            AnySolver::BasisPursuit(BasisPursuit::default()),
            AnySolver::Irls(Irls::default()),
            AnySolver::Omp(Omp::new(4)),
        ];
        // Shapes deliberately vary so buffers must resize between solves.
        let problems = [
            problem(16, 40, 3, &[5, 21]),
            problem(24, 64, 7, &[2, 33, 60]),
            problem(12, 20, 11, &[4]),
        ];
        for solver in &solvers {
            let mut ws = SolverWorkspace::new();
            for (a, y) in &problems {
                let fresh = solver.recover(a, y).unwrap();
                let reused = solver.recover_with(a, y, &mut ws).unwrap();
                assert_eq!(
                    fresh.solution,
                    reused.solution,
                    "{} solution drifted under workspace reuse",
                    solver.name()
                );
                assert_eq!(fresh.iterations, reused.iterations, "{}", solver.name());
                assert_eq!(
                    fresh.residual_norm.to_bits(),
                    reused.residual_norm.to_bits(),
                    "{} residual drifted",
                    solver.name()
                );
                assert_eq!(fresh.converged, reused.converged, "{}", solver.name());
            }
        }
    }

    /// The batched contract, for every family through the `AnySolver`
    /// dispatch: `recover_multi` on a shared (dirty) workspace returns,
    /// per column, exactly the `Recovery` of a fresh cold `recover`.
    #[test]
    fn recover_multi_is_bit_identical_per_column() {
        let solvers = [
            AnySolver::Fista(Fista::default()),
            AnySolver::Fista(Fista::default().with_acceleration(Acceleration::None)),
            AnySolver::AdmmLasso(AdmmLasso::default()),
            AnySolver::BasisPursuit(BasisPursuit::default()),
            AnySolver::Irls(Irls::default()),
            AnySolver::Omp(Omp::new(4)),
        ];
        let (a, _) = problem(20, 44, 9, &[]);
        let ys: Vec<Vec<f64>> = [vec![3, 17], vec![8, 40], vec![25]]
            .iter()
            .map(|support| {
                let mut theta = vec![0.0; 44];
                for &j in support {
                    theta[j] = 1.0;
                }
                a.matvec(&theta)
            })
            .collect();
        for solver in &solvers {
            let mut ws = SolverWorkspace::new();
            let multi = solver.recover_multi(&a, &ys, &mut ws).unwrap();
            assert_eq!(multi.len(), ys.len());
            for (y, rec) in ys.iter().zip(&multi) {
                let solo = solver.recover(&a, y).unwrap();
                assert_eq!(
                    rec.solution,
                    solo.solution,
                    "{} batched solution drifted",
                    solver.name()
                );
                assert_eq!(rec.iterations, solo.iterations, "{}", solver.name());
                assert_eq!(
                    rec.residual_norm.to_bits(),
                    solo.residual_norm.to_bits(),
                    "{} residual drifted",
                    solver.name()
                );
                assert_eq!(rec.converged, solo.converged, "{}", solver.name());
            }
        }
    }
}
