//! Hand-rolled ℓ1-minimization / sparse-recovery solvers.
//!
//! CrowdWiFi (§4.1) recovers the AP indicator vector `θ` from compressive
//! RSS measurements by solving
//!
//! ```text
//! θ̂ = argmin ‖θ‖₁   s.t.  y = A θ (+ ε)
//! ```
//!
//! No maintained compressive-sensing crate exists, so this crate
//! implements the standard solver families from scratch on top of
//! [`crowdwifi_linalg`]:
//!
//! * [`fista`] — proximal-gradient LASSO (`min ½‖Aθ − y‖² + λ‖θ‖₁`), in
//!   plain ISTA and accelerated FISTA variants. The pipeline default.
//! * [`admm`] — ADMM solvers for both the LASSO and the equality-
//!   constrained basis-pursuit program.
//! * [`omp`] — orthogonal matching pursuit, a greedy baseline that is also
//!   used to sanity-check the convex solvers in tests,
//! * [`irls`] — iteratively reweighted least squares, a fourth family
//!   whose failure modes differ from the proximal methods.
//!
//! All solvers implement the [`SparseRecovery`] trait so the CS pipeline
//! can swap them.
//!
//! # Example
//!
//! ```
//! use crowdwifi_linalg::Matrix;
//! use crowdwifi_sparsesolve::{fista::Fista, SparseRecovery};
//!
//! // Identity sensing matrix: recovery is just soft thresholding.
//! let a = Matrix::identity(4);
//! let y = [0.0, 5.0, 0.0, -3.0];
//! let result = Fista::default().recover(&a, &y)?;
//! assert!(result.solution[1] > 4.0);
//! # Ok::<(), crowdwifi_sparsesolve::SolverError>(())
//! ```

#![deny(missing_docs)]

pub mod admm;
pub mod any;
pub mod fista;
pub mod irls;
pub mod omp;
pub mod prox;
mod screen;
pub mod workspace;

pub use any::AnySolver;
pub use fista::Fista;
pub use workspace::SolverWorkspace;

use crowdwifi_linalg::Matrix;

/// Errors produced by sparse-recovery solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// `y.len()` does not match the row count of `A`.
    ShapeMismatch {
        /// Rows of the sensing matrix.
        matrix_rows: usize,
        /// Length of the measurement vector.
        rhs_len: usize,
    },
    /// The sensing matrix has a zero dimension.
    EmptyProblem,
    /// The underlying linear-algebra kernel failed.
    Linalg(String),
    /// A solver parameter is out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::ShapeMismatch {
                matrix_rows,
                rhs_len,
            } => write!(
                f,
                "measurement vector length {rhs_len} does not match {matrix_rows} matrix rows"
            ),
            SolverError::EmptyProblem => write!(f, "sensing matrix has a zero dimension"),
            SolverError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            SolverError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

impl From<crowdwifi_linalg::LinalgError> for SolverError {
    fn from(e: crowdwifi_linalg::LinalgError) -> Self {
        SolverError::Linalg(e.to_string())
    }
}

/// Convenience alias for solver results.
pub type Result<T> = std::result::Result<T, SolverError>;

/// Outcome of a sparse-recovery solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// The recovered coefficient vector `θ̂` (length = columns of `A`).
    pub solution: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual norm `‖A θ̂ − y‖₂`.
    pub residual_norm: f64,
    /// Whether the stopping tolerance was reached before the iteration cap.
    pub converged: bool,
    /// Columns provably excluded from every optimal support by gap-safe
    /// screening. Zero for solvers (or configurations) without screening.
    pub screened_cols: usize,
    /// Iteration-budget headroom left by early stopping: `cap − iterations`
    /// for converged solves of the iterative families, zero otherwise.
    pub iterations_saved: usize,
}

impl Recovery {
    /// Indices of coefficients with `|θ_i| > tol`, sorted by descending
    /// magnitude.
    pub fn support(&self, tol: f64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.solution.len())
            .filter(|&i| self.solution[i].abs() > tol)
            .collect();
        idx.sort_by(|&i, &j| {
            self.solution[j]
                .abs()
                .partial_cmp(&self.solution[i].abs())
                .expect("NaN coefficient")
        });
        idx
    }
}

/// A solver for the sparse linear inverse problem `y ≈ A θ` with an
/// ℓ1 sparsity prior on `θ`.
pub trait SparseRecovery {
    /// Recovers a sparse `θ` from measurements `y` and sensing matrix `a`.
    ///
    /// # Errors
    ///
    /// Implementations return [`SolverError::ShapeMismatch`] when
    /// `y.len() != a.rows()` and [`SolverError::EmptyProblem`] for empty
    /// sensing matrices.
    fn recover(&self, a: &Matrix, y: &[f64]) -> Result<Recovery>;

    /// Like [`SparseRecovery::recover`], but reusing the buffers in
    /// `ws` across calls — the allocation-lean entry point for hot
    /// loops that solve many programs (the CS pipeline solves one per
    /// hypothesis group per window).
    ///
    /// Implementations must return exactly the [`Recovery`] that
    /// [`SparseRecovery::recover`] would; the workspace only changes
    /// where intermediates are stored. The default ignores `ws`, which
    /// trivially satisfies that contract (direct solvers like OMP have
    /// no per-iteration vectors worth pooling).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`SparseRecovery::recover`].
    fn recover_with(&self, a: &Matrix, y: &[f64], ws: &mut SolverWorkspace) -> Result<Recovery> {
        let _ = ws;
        self.recover(a, y)
    }

    /// Recovers one sparse vector per right-hand side in `ys`, all
    /// sharing the sensing matrix `a` — the batched entry point for
    /// call sites that solve many programs against one operator (the
    /// CS pipeline's per-window group solves, the SVD-application step
    /// of the orthogonalization).
    ///
    /// Each returned [`Recovery`] is **bit-identical** to what a
    /// standalone [`SparseRecovery::recover_with`] on that column would
    /// produce from a cold start; batching only amortizes the work the
    /// columns share (Lipschitz estimation, Gram/Cholesky
    /// factorizations, matrix traversals). Because a warm-start seed is
    /// inherently per-column, any pending seed in `ws` is cleared
    /// before the batch so every column starts cold.
    ///
    /// The default implementation is the per-column loop; solvers with
    /// shareable per-operator work (`Fista`, `AdmmLasso`,
    /// `BasisPursuit`) override it.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`SparseRecovery::recover_with`],
    /// applied to every column.
    fn recover_multi(
        &self,
        a: &Matrix,
        ys: &[Vec<f64>],
        ws: &mut SolverWorkspace,
    ) -> Result<Vec<Recovery>> {
        ws.clear_warm_start();
        ys.iter().map(|y| self.recover_with(a, y, ws)).collect()
    }

    /// Short human-readable solver name (used in benches and logs).
    fn name(&self) -> &'static str;
}

pub(crate) fn validate_problem(a: &Matrix, y: &[f64]) -> Result<()> {
    if a.rows() == 0 || a.cols() == 0 {
        return Err(SolverError::EmptyProblem);
    }
    if y.len() != a.rows() {
        return Err(SolverError::ShapeMismatch {
            matrix_rows: a.rows(),
            rhs_len: y.len(),
        });
    }
    Ok(())
}

/// Estimates the squared spectral norm `‖A‖₂²` via power iteration on
/// `AᵀA`; used by the proximal-gradient solvers to pick a safe step size.
pub(crate) fn spectral_norm_sq(a: &Matrix, iterations: usize) -> f64 {
    let n = a.cols();
    if n == 0 || a.rows() == 0 {
        return 0.0;
    }
    // Deterministic, non-degenerate start vector.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
    let mut lambda = 0.0;
    for _ in 0..iterations {
        let av = a.matvec(&v);
        let atav = a.matvec_transposed(&av);
        let norm = crowdwifi_linalg::vector::norm2(&atav);
        if norm == 0.0 {
            return 0.0;
        }
        lambda = norm;
        for (vi, &x) in v.iter_mut().zip(&atav) {
            *vi = x / norm;
        }
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectral_norm_of_diagonal() {
        let a = Matrix::diagonal(&[1.0, -4.0, 2.0]);
        let est = spectral_norm_sq(&a, 50);
        assert!((est - 16.0).abs() < 1e-6, "got {est}");
    }

    #[test]
    fn spectral_norm_of_zero_matrix() {
        assert_eq!(spectral_norm_sq(&Matrix::zeros(3, 3), 10), 0.0);
    }

    #[test]
    fn validate_catches_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            validate_problem(&a, &[1.0]),
            Err(SolverError::ShapeMismatch { .. })
        ));
        assert!(validate_problem(&a, &[1.0, 2.0]).is_ok());
    }

    #[test]
    fn recovery_support_sorted_by_magnitude() {
        let r = Recovery {
            solution: vec![0.1, -3.0, 0.0, 2.0],
            iterations: 1,
            residual_norm: 0.0,
            converged: true,
            screened_cols: 0,
            iterations_saved: 0,
        };
        assert_eq!(r.support(0.5), vec![1, 3]);
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!SolverError::EmptyProblem.to_string().is_empty());
    }
}
