//! ADMM solvers: LASSO and equality-constrained basis pursuit.
//!
//! Both follow the scaled-dual formulations of Boyd et al., *Distributed
//! Optimization and Statistical Learning via ADMM* (2011):
//!
//! * [`AdmmLasso`] solves `min ½‖Aθ − y‖² + λ‖θ‖₁` by alternating a ridge
//!   solve with soft-thresholding. The `(AᵀA + ρI)` system is factored
//!   once with Cholesky and reused every iteration.
//! * [`BasisPursuit`] solves the noiseless program `min ‖θ‖₁ s.t. Aθ = y`
//!   by alternating projection onto the affine constraint set with
//!   soft-thresholding — the closest implementable match to the paper's
//!   written ℓ1 program.

use crate::prox::{soft_threshold_nonneg_vec, soft_threshold_vec};
use crate::screen::duality_gap;
use crate::{validate_problem, Recovery, Result, SolverError, SolverWorkspace, SparseRecovery};
use crowdwifi_linalg::solve::Cholesky;
use crowdwifi_linalg::svd::pseudo_inverse;
use crowdwifi_linalg::vector;
use crowdwifi_linalg::Matrix;

/// ADMM solver for the LASSO program.
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::Matrix;
/// use crowdwifi_sparsesolve::{admm::AdmmLasso, SparseRecovery};
///
/// let a = Matrix::identity(3);
/// let rec = AdmmLasso::default().recover(&a, &[4.0, 0.0, 0.0])?;
/// assert_eq!(rec.support(0.5), vec![0]);
/// # Ok::<(), crowdwifi_sparsesolve::SolverError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdmmLasso {
    lambda_rel: f64,
    rho: f64,
    max_iterations: usize,
    tolerance: f64,
    nonnegative: bool,
    gap_tolerance: f64,
}

impl Default for AdmmLasso {
    fn default() -> Self {
        AdmmLasso {
            lambda_rel: 0.01,
            rho: 1.0,
            max_iterations: 1000,
            tolerance: 1e-8,
            nonnegative: true,
            gap_tolerance: 0.0,
        }
    }
}

impl AdmmLasso {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the regularization weight relative to `‖Aᵀy‖_∞`; must lie in
    /// `(0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidParameter`] when out of range.
    pub fn with_lambda_rel(mut self, lambda_rel: f64) -> Result<Self> {
        if !(lambda_rel > 0.0 && lambda_rel < 1.0) {
            return Err(SolverError::InvalidParameter {
                name: "lambda_rel",
                reason: format!("must be in (0, 1), got {lambda_rel}"),
            });
        }
        self.lambda_rel = lambda_rel;
        Ok(self)
    }

    /// Sets the augmented-Lagrangian penalty ρ (default 1.0).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidParameter`] if `rho <= 0`.
    pub fn with_rho(mut self, rho: f64) -> Result<Self> {
        if rho <= 0.0 {
            return Err(SolverError::InvalidParameter {
                name: "rho",
                reason: format!("must be positive, got {rho}"),
            });
        }
        self.rho = rho;
        Ok(self)
    }

    /// Sets the iteration cap (default 1000).
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }

    /// Sets the primal/dual residual stopping tolerance (default `1e-8`).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidParameter`] for negative or
    /// non-finite values (matching the other solver builders).
    pub fn with_tolerance(mut self, tolerance: f64) -> Result<Self> {
        if !(tolerance >= 0.0 && tolerance.is_finite()) {
            return Err(SolverError::InvalidParameter {
                name: "tolerance",
                reason: format!("must be non-negative and finite, got {tolerance}"),
            });
        }
        self.tolerance = tolerance;
        Ok(self)
    }

    /// Enables duality-gap early stopping (default: off / `0.0`): every
    /// few iterations the LASSO duality gap is evaluated at the sparse
    /// iterate `z`, and the solve stops once `gap ≤ tol · primal` — a
    /// rigorous suboptimality certificate that usually fires well
    /// before the residual rule. `0.0` disables the check.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidParameter`] for negative or
    /// non-finite values.
    pub fn with_gap_tolerance(mut self, tol: f64) -> Result<Self> {
        if !(tol >= 0.0 && tol.is_finite()) {
            return Err(SolverError::InvalidParameter {
                name: "gap_tolerance",
                reason: format!("must be non-negative and finite, got {tol}"),
            });
        }
        self.gap_tolerance = tol;
        Ok(self)
    }

    /// Enables or disables the `θ ≥ 0` constraint (default: enabled).
    pub fn with_nonnegative(mut self, nonnegative: bool) -> Self {
        self.nonnegative = nonnegative;
        self
    }

    /// Factors `(AᵀA + ρI)` — the per-operator work every solve against
    /// `a` shares, hoisted so [`SparseRecovery::recover_multi`] pays it
    /// once per batch instead of once per column.
    fn factor(&self, a: &Matrix) -> Result<Cholesky> {
        let mut gram = a.transpose().matmul(a);
        for i in 0..a.cols() {
            gram.set(i, i, gram.get(i, i) + self.rho);
        }
        Ok(Cholesky::new(&gram)?)
    }
}

impl SparseRecovery for AdmmLasso {
    fn recover(&self, a: &Matrix, y: &[f64]) -> Result<Recovery> {
        self.recover_with(a, y, &mut SolverWorkspace::new())
    }

    fn recover_with(&self, a: &Matrix, y: &[f64], ws: &mut SolverWorkspace) -> Result<Recovery> {
        validate_problem(a, y)?;
        let chol = self.factor(a)?;
        self.solve_factored(a, y, &chol, ws)
    }

    fn recover_multi(
        &self,
        a: &Matrix,
        ys: &[Vec<f64>],
        ws: &mut SolverWorkspace,
    ) -> Result<Vec<Recovery>> {
        ws.clear_warm_start();
        for y in ys {
            validate_problem(a, y)?;
        }
        if ys.is_empty() {
            return Ok(Vec::new());
        }
        // The Cholesky factor of (AᵀA + ρI) depends only on `a`: one
        // factorization serves every right-hand side, bit-identically.
        let chol = self.factor(a)?;
        ys.iter()
            .map(|y| self.solve_factored(a, y, &chol, ws))
            .collect()
    }

    fn name(&self) -> &'static str {
        "admm-lasso"
    }
}

impl AdmmLasso {
    /// One ADMM solve against a pre-factored `(AᵀA + ρI)`; the whole
    /// iteration of the historical `recover_with`, unchanged.
    fn solve_factored(
        &self,
        a: &Matrix,
        y: &[f64],
        chol: &Cholesky,
        ws: &mut SolverWorkspace,
    ) -> Result<Recovery> {
        let n = a.cols();
        let rho = self.rho;

        // Aᵀy lives in `grad` for the whole solve (the x-update rhs
        // reads it every iteration).
        a.matvec_transposed_into(y, &mut ws.grad);
        let lambda = self.lambda_rel * vector::norm_inf(&ws.grad);

        ws.x.clear();
        ws.x.resize(n, 0.0);
        ws.z.clear();
        ws.z.resize(n, 0.0);
        ws.u.clear();
        ws.u.resize(n, 0.0);
        // A pending warm-start seed replaces the zero start of the
        // sparse iterate z (the x-update immediately pulls x toward
        // it); non-finite or infeasible entries fall back to zero.
        if let Some(warm) = ws.take_warm_start(n) {
            for (zi, &wi) in ws.z.iter_mut().zip(&warm) {
                if wi.is_finite() && (!self.nonnegative || wi > 0.0) {
                    *zi = wi;
                }
            }
        }
        let mut iterations = 0;
        let mut converged = false;

        for k in 0..self.max_iterations {
            iterations = k + 1;
            // x-update: (AᵀA + ρI) x = Aᵀy + ρ(z − u).
            ws.n_scratch.clear();
            ws.n_scratch.extend(
                ws.grad
                    .iter()
                    .zip(ws.z.iter().zip(&ws.u))
                    .map(|(&a_, (&z_, &u_))| a_ + rho * (z_ - u_)),
            );
            chol.solve_into(&ws.n_scratch, &mut ws.x)?;

            // z-update: prox of (λ/ρ)‖·‖₁ at x + u; `x_alt` keeps the
            // previous z for the dual residual.
            ws.x_alt.clear();
            ws.x_alt.extend_from_slice(&ws.z);
            for (zi, (&xi, &ui)) in ws.z.iter_mut().zip(ws.x.iter().zip(&ws.u)) {
                *zi = xi + ui;
            }
            if self.nonnegative {
                soft_threshold_nonneg_vec(&mut ws.z, lambda / rho);
            } else {
                soft_threshold_vec(&mut ws.z, lambda / rho);
            }

            // u-update (scaled dual ascent).
            for (ui, (&xi, &zi)) in ws.u.iter_mut().zip(ws.x.iter().zip(&ws.z)) {
                *ui += xi - zi;
            }

            // Primal/dual residual stopping rule.
            let primal = vector::distance(&ws.x, &ws.z);
            let dual = rho * vector::distance(&ws.z, &ws.x_alt);
            let scale = vector::norm2(&ws.z).max(1e-12);
            if primal <= self.tolerance * scale && dual <= self.tolerance * scale {
                converged = true;
                break;
            }

            // Duality-gap early stopping at the sparse iterate z: two
            // matvecs every 10 iterations buy a rigorous certificate.
            if self.gap_tolerance > 0.0 && iterations % 10 == 0 {
                a.matvec_into(&ws.z, &mut ws.m_scratch);
                vector::sub_into(y, &ws.m_scratch, &mut ws.m_scratch2); // r = y − Az
                a.matvec_transposed_into(&ws.m_scratch2, &mut ws.n_scratch);
                let gap = duality_gap(
                    y,
                    &ws.m_scratch2,
                    &ws.n_scratch,
                    vector::norm1(&ws.z),
                    lambda,
                    self.nonnegative,
                );
                if gap.gap <= self.gap_tolerance * gap.primal.max(1e-300) {
                    converged = true;
                    break;
                }
            }
        }

        a.matvec_into(&ws.z, &mut ws.m_scratch);
        vector::sub_into(&ws.m_scratch, y, &mut ws.m_scratch2);
        let residual_norm = vector::norm2(&ws.m_scratch2);
        Ok(Recovery {
            solution: ws.z.clone(),
            iterations,
            residual_norm,
            converged,
            screened_cols: 0,
            iterations_saved: if converged {
                self.max_iterations - iterations
            } else {
                0
            },
        })
    }
}

/// ADMM solver for equality-constrained basis pursuit
/// (`min ‖θ‖₁ s.t. Aθ = y`), the literal program of §4.1.
///
/// Requires `A` to have full row rank (true for the orthogonalized
/// operators produced by Proposition 1, whose rows are orthonormal).
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::Matrix;
/// use crowdwifi_sparsesolve::{admm::BasisPursuit, SparseRecovery};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0]]);
/// let rec = BasisPursuit::default().recover(&a, &[1.0, 1.0])?;
/// // Minimum-ℓ1 solution is the single coefficient on column 2.
/// assert_eq!(rec.support(0.5), vec![2]);
/// # Ok::<(), crowdwifi_sparsesolve::SolverError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BasisPursuit {
    max_iterations: usize,
    tolerance: f64,
    nonnegative: bool,
}

impl Default for BasisPursuit {
    fn default() -> Self {
        BasisPursuit {
            max_iterations: 2000,
            tolerance: 1e-9,
            nonnegative: false,
        }
    }
}

impl BasisPursuit {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the iteration cap (default 2000).
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }

    /// Enables the `θ ≥ 0` constraint (default: disabled — the classic
    /// basis-pursuit program is signed).
    pub fn with_nonnegative(mut self, nonnegative: bool) -> Self {
        self.nonnegative = nonnegative;
        self
    }
}

impl SparseRecovery for BasisPursuit {
    fn recover(&self, a: &Matrix, y: &[f64]) -> Result<Recovery> {
        self.recover_with(a, y, &mut SolverWorkspace::new())
    }

    fn recover_with(&self, a: &Matrix, y: &[f64], ws: &mut SolverWorkspace) -> Result<Recovery> {
        validate_problem(a, y)?;
        let pinv = pseudo_inverse(a)?;
        self.solve_with_pinv(a, y, &pinv, ws)
    }

    fn recover_multi(
        &self,
        a: &Matrix,
        ys: &[Vec<f64>],
        ws: &mut SolverWorkspace,
    ) -> Result<Vec<Recovery>> {
        ws.clear_warm_start();
        for y in ys {
            validate_problem(a, y)?;
        }
        if ys.is_empty() {
            return Ok(Vec::new());
        }
        // A† depends only on `a`: one SVD serves every right-hand side.
        let pinv = pseudo_inverse(a)?;
        ys.iter()
            .map(|y| self.solve_with_pinv(a, y, &pinv, ws))
            .collect()
    }

    fn name(&self) -> &'static str {
        "admm-bp"
    }
}

impl BasisPursuit {
    /// One basis-pursuit solve against a precomputed `A†`; the whole
    /// iteration of the historical `recover_with`, unchanged.
    fn solve_with_pinv(
        &self,
        a: &Matrix,
        y: &[f64],
        pinv: &Matrix,
        ws: &mut SolverWorkspace,
    ) -> Result<Recovery> {
        let n = a.cols();

        // Projection onto {x : Ax = y} is x ↦ x − A†(Ax − y).
        pinv.matvec_into(y, &mut ws.x); // feasible start

        ws.z.clear();
        ws.z.resize(n, 0.0);
        ws.u.clear();
        ws.u.resize(n, 0.0);
        let rho = 1.0;
        let mut iterations = 0;
        let mut converged = false;

        for k in 0..self.max_iterations {
            iterations = k + 1;
            // x-update: project v = z − u onto the affine constraint
            // (built in `x_alt`, swapped into `x` once corrected).
            vector::sub_into(&ws.z, &ws.u, &mut ws.x_alt);
            a.matvec_into(&ws.x_alt, &mut ws.m_scratch);
            vector::sub_into(&ws.m_scratch, y, &mut ws.m_scratch2);
            pinv.matvec_into(&ws.m_scratch2, &mut ws.grad);
            vector::axpy(-1.0, &ws.grad, &mut ws.x_alt);
            std::mem::swap(&mut ws.x, &mut ws.x_alt);

            // z-update: soft threshold at 1/ρ; `n_scratch` keeps the
            // previous z for the dual residual.
            ws.n_scratch.clear();
            ws.n_scratch.extend_from_slice(&ws.z);
            for (zi, (&xi, &ui)) in ws.z.iter_mut().zip(ws.x.iter().zip(&ws.u)) {
                *zi = xi + ui;
            }
            if self.nonnegative {
                soft_threshold_nonneg_vec(&mut ws.z, 1.0 / rho);
            } else {
                soft_threshold_vec(&mut ws.z, 1.0 / rho);
            }

            for (ui, (&xi, &zi)) in ws.u.iter_mut().zip(ws.x.iter().zip(&ws.z)) {
                *ui += xi - zi;
            }

            let primal = vector::distance(&ws.x, &ws.z);
            let dual = rho * vector::distance(&ws.z, &ws.n_scratch);
            let scale = vector::norm2(&ws.x).max(1e-12);
            if primal <= self.tolerance * scale && dual <= self.tolerance * scale {
                converged = true;
                break;
            }
        }

        // x is the feasible iterate: report it (z may be slightly
        // infeasible but sparser; x inherits its sparsity at convergence).
        a.matvec_into(&ws.x, &mut ws.m_scratch);
        vector::sub_into(&ws.m_scratch, y, &mut ws.m_scratch2);
        let residual_norm = vector::norm2(&ws.m_scratch2);
        Ok(Recovery {
            solution: ws.x.clone(),
            iterations,
            residual_norm,
            converged,
            screened_cols: 0,
            iterations_saved: if converged {
                self.max_iterations - iterations
            } else {
                0
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fista::Fista;

    fn bernoulli_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let scale = 1.0 / (m as f64).sqrt();
        Matrix::from_fn(m, n, |_, _| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            if (state.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1 == 1 {
                scale
            } else {
                -scale
            }
        })
    }

    #[test]
    fn admm_lasso_recovers_sparse_signal() {
        let (m, n) = (24, 64);
        let a = bernoulli_matrix(m, n, 5);
        let mut theta = vec![0.0; n];
        theta[2] = 1.0;
        theta[33] = 1.0;
        let y = a.matvec(&theta);
        let rec = AdmmLasso::default()
            .with_lambda_rel(0.005)
            .unwrap()
            .recover(&a, &y)
            .unwrap();
        let mut supp = rec.support(0.3);
        supp.sort_unstable();
        assert_eq!(supp, vec![2, 33]);
    }

    #[test]
    fn admm_and_fista_agree() {
        let a = bernoulli_matrix(20, 40, 9);
        let mut theta = vec![0.0; 40];
        theta[7] = 1.0;
        theta[22] = 1.0;
        let y = a.matvec(&theta);
        let f = Fista::default()
            .with_lambda_rel(0.01)
            .unwrap()
            .recover(&a, &y)
            .unwrap();
        let m = AdmmLasso::default()
            .with_lambda_rel(0.01)
            .unwrap()
            .recover(&a, &y)
            .unwrap();
        let d = vector::distance(&f.solution, &m.solution);
        assert!(d < 1e-2, "solver disagreement {d}");
    }

    #[test]
    fn basis_pursuit_exact_recovery() {
        let (m, n) = (20, 50);
        let a = bernoulli_matrix(m, n, 11);
        let mut theta = vec![0.0; n];
        theta[4] = 1.5;
        theta[27] = -2.0;
        let y = a.matvec(&theta);
        let rec = BasisPursuit::default().recover(&a, &y).unwrap();
        // Exact recovery in the noiseless regime.
        let d = vector::distance(&rec.solution, &theta);
        assert!(d < 1e-4, "recovery error {d}");
        // Feasibility: A θ̂ = y.
        assert!(rec.residual_norm < 1e-8);
    }

    #[test]
    fn basis_pursuit_nonneg_variant() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0]]);
        let rec = BasisPursuit::default()
            .with_nonnegative(true)
            .recover(&a, &[1.0, 1.0])
            .unwrap();
        assert_eq!(rec.support(0.5), vec![2]);
        assert!(rec.solution.iter().all(|&x| x >= -1e-9));
    }

    /// The batched entry point shares one factorization (Cholesky for
    /// the LASSO, the SVD pseudo-inverse for basis pursuit) across the
    /// batch; every column must stay bit-identical to a cold standalone
    /// solve.
    #[test]
    fn multi_rhs_matches_solo_bitwise() {
        let (m, n) = (20, 44);
        let a = bernoulli_matrix(m, n, 27);
        let ys: Vec<Vec<f64>> = (0..3)
            .map(|s: usize| {
                let mut theta = vec![0.0; n];
                theta[(3 + 13 * s) % n] = 1.0;
                theta[(29 * (s + 1)) % n] = if s == 1 { -1.5 } else { 0.7 };
                a.matvec(&theta)
            })
            .collect();
        let solvers: Vec<Box<dyn SparseRecovery>> = vec![
            Box::new(AdmmLasso::default()),
            Box::new(AdmmLasso::default().with_gap_tolerance(1e-9).unwrap()),
            Box::new(AdmmLasso::default().with_nonnegative(false)),
            Box::new(BasisPursuit::default()),
        ];
        for solver in &solvers {
            let mut ws = SolverWorkspace::new();
            let multi = solver.recover_multi(&a, &ys, &mut ws).unwrap();
            assert_eq!(multi.len(), ys.len());
            for (y, rec) in ys.iter().zip(&multi) {
                let solo = solver.recover(&a, y).unwrap();
                assert_eq!(rec.solution, solo.solution, "{} drifted", solver.name());
                assert_eq!(rec.iterations, solo.iterations, "{}", solver.name());
                assert_eq!(
                    rec.residual_norm.to_bits(),
                    solo.residual_norm.to_bits(),
                    "{} residual drifted",
                    solver.name()
                );
                assert_eq!(rec.converged, solo.converged, "{}", solver.name());
            }
        }
    }

    #[test]
    fn admm_rejects_bad_parameters() {
        assert!(AdmmLasso::default().with_rho(0.0).is_err());
        assert!(AdmmLasso::default().with_lambda_rel(2.0).is_err());
    }

    #[test]
    fn rejects_empty_problem() {
        assert!(matches!(
            BasisPursuit::default().recover(&Matrix::zeros(0, 0), &[]),
            Err(SolverError::EmptyProblem)
        ));
    }
}
