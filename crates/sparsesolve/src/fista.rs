//! ISTA / FISTA proximal-gradient solvers for the LASSO program.
//!
//! Solves `min_θ ½‖Aθ − y‖₂² + λ‖θ‖₁`, optionally with a `θ ≥ 0`
//! constraint. FISTA adds Nesterov momentum for an `O(1/k²)` rate, which
//! matters in the online pipeline where each sliding-window round solves
//! many small programs.

use crate::prox::{soft_threshold_nonneg_vec, soft_threshold_vec};
use crate::{
    spectral_norm_sq, validate_problem, Recovery, Result, SolverError, SolverWorkspace,
    SparseRecovery,
};
use crowdwifi_linalg::vector;
use crowdwifi_linalg::Matrix;

/// Momentum variant used by [`Fista`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Acceleration {
    /// Plain ISTA (no momentum).
    None,
    /// Nesterov momentum (classic FISTA).
    #[default]
    Nesterov,
}

/// Proximal-gradient LASSO solver.
///
/// The default configuration matches what the CrowdWiFi pipeline needs:
/// accelerated, non-negative (AP indicators cannot be negative) and with a
/// data-scaled regularization weight.
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::Matrix;
/// use crowdwifi_sparsesolve::{Fista, SparseRecovery};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0]]);
/// let y = [2.0, 0.0];
/// let rec = Fista::default().recover(&a, &y)?;
/// // Sparsest consistent explanation puts the mass on column 0.
/// assert_eq!(rec.support(0.1), vec![0]);
/// # Ok::<(), crowdwifi_sparsesolve::SolverError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fista {
    lambda_rel: f64,
    max_iterations: usize,
    tolerance: f64,
    nonnegative: bool,
    acceleration: Acceleration,
}

impl Default for Fista {
    fn default() -> Self {
        Fista {
            lambda_rel: 0.01,
            max_iterations: 2000,
            tolerance: 1e-8,
            nonnegative: true,
            acceleration: Acceleration::Nesterov,
        }
    }
}

impl Fista {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the regularization weight **relative to** `‖Aᵀy‖_∞` (the
    /// smallest λ for which the solution is identically zero). Must lie
    /// in `(0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidParameter`] when out of range.
    pub fn with_lambda_rel(mut self, lambda_rel: f64) -> Result<Self> {
        if !(lambda_rel > 0.0 && lambda_rel < 1.0) {
            return Err(SolverError::InvalidParameter {
                name: "lambda_rel",
                reason: format!("must be in (0, 1), got {lambda_rel}"),
            });
        }
        self.lambda_rel = lambda_rel;
        Ok(self)
    }

    /// Sets the iteration cap (default 2000).
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }

    /// Sets the relative-change stopping tolerance (default `1e-8`).
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance.max(0.0);
        self
    }

    /// Enables or disables the `θ ≥ 0` constraint (default: enabled).
    pub fn with_nonnegative(mut self, nonnegative: bool) -> Self {
        self.nonnegative = nonnegative;
        self
    }

    /// Selects the momentum variant (default: Nesterov / FISTA).
    pub fn with_acceleration(mut self, acceleration: Acceleration) -> Self {
        self.acceleration = acceleration;
        self
    }
}

impl SparseRecovery for Fista {
    fn recover(&self, a: &Matrix, y: &[f64]) -> Result<Recovery> {
        self.recover_with(a, y, &mut SolverWorkspace::new())
    }

    fn recover_with(&self, a: &Matrix, y: &[f64], ws: &mut SolverWorkspace) -> Result<Recovery> {
        validate_problem(a, y)?;
        let n = a.cols();

        // Step size 1/L with L = ‖A‖₂² (Lipschitz constant of the smooth
        // part), padded slightly for the power-iteration error.
        let lipschitz = spectral_norm_sq(a, 30) * 1.02;
        if lipschitz == 0.0 {
            // A is the zero matrix: the minimizer is θ = 0.
            return Ok(Recovery {
                solution: vec![0.0; n],
                iterations: 0,
                residual_norm: vector::norm2(y),
                converged: true,
            });
        }
        let step = 1.0 / lipschitz;

        // λ scaled to the problem: λ_max = ‖Aᵀy‖_∞ zeroes the solution.
        a.matvec_transposed_into(y, &mut ws.grad);
        let lambda = self.lambda_rel * vector::norm_inf(&ws.grad);

        ws.x.clear();
        ws.x.resize(n, 0.0);
        ws.z.clear();
        ws.z.resize(n, 0.0); // extrapolation point
        let mut t: f64 = 1.0;
        let mut iterations = 0;
        let mut converged = false;

        for k in 0..self.max_iterations {
            iterations = k + 1;
            // Gradient step at z: z − step · Aᵀ(Az − y). `x_alt` plays
            // the role of x_new until the swap below.
            a.matvec_into(&ws.z, &mut ws.m_scratch);
            vector::sub_into(&ws.m_scratch, y, &mut ws.m_scratch2);
            a.matvec_transposed_into(&ws.m_scratch2, &mut ws.grad);
            ws.x_alt.clear();
            ws.x_alt.extend_from_slice(&ws.z);
            vector::axpy(-step, &ws.grad, &mut ws.x_alt);
            // Proximal step.
            if self.nonnegative {
                soft_threshold_nonneg_vec(&mut ws.x_alt, step * lambda);
            } else {
                soft_threshold_vec(&mut ws.x_alt, step * lambda);
            }

            // Relative change stopping rule.
            let delta = vector::distance(&ws.x_alt, &ws.x);
            let scale = vector::norm2(&ws.x_alt).max(1e-12);

            match self.acceleration {
                Acceleration::Nesterov => {
                    let t_new = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
                    let beta = (t - 1.0) / t_new;
                    ws.z.clear();
                    ws.z.extend(
                        ws.x_alt
                            .iter()
                            .zip(&ws.x)
                            .map(|(&xn, &xo)| xn + beta * (xn - xo)),
                    );
                    t = t_new;
                }
                Acceleration::None => {
                    ws.z.clear();
                    ws.z.extend_from_slice(&ws.x_alt);
                }
            }
            // x = x_new without a clone; the stale old-x contents of
            // `x_alt` are fully overwritten next iteration.
            std::mem::swap(&mut ws.x, &mut ws.x_alt);

            if delta <= self.tolerance * scale {
                converged = true;
                break;
            }
        }

        a.matvec_into(&ws.x, &mut ws.m_scratch);
        vector::sub_into(&ws.m_scratch, y, &mut ws.m_scratch2);
        let residual_norm = vector::norm2(&ws.m_scratch2);
        Ok(Recovery {
            solution: ws.x.clone(),
            iterations,
            residual_norm,
            converged,
        })
    }

    fn name(&self) -> &'static str {
        match self.acceleration {
            Acceleration::Nesterov => "fista",
            Acceleration::None => "ista",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random ±1/√M Bernoulli sensing matrix; such
    /// matrices satisfy RIP with high probability.
    fn bernoulli_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let scale = 1.0 / (m as f64).sqrt();
        Matrix::from_fn(m, n, |_, _| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bit = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1;
            if bit == 1 {
                scale
            } else {
                -scale
            }
        })
    }

    #[test]
    fn recovers_sparse_nonnegative_signal() {
        let (m, n) = (24, 64);
        let a = bernoulli_matrix(m, n, 7);
        let mut theta = vec![0.0; n];
        theta[5] = 1.0;
        theta[40] = 1.0;
        theta[61] = 1.0;
        let y = a.matvec(&theta);

        let rec = Fista::default()
            .with_lambda_rel(0.005)
            .unwrap()
            .recover(&a, &y)
            .unwrap();
        let supp = rec.support(0.3);
        let mut sorted = supp.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![5, 40, 61], "support {supp:?}");
    }

    #[test]
    fn signed_recovery_needs_unconstrained_mode() {
        let (m, n) = (24, 48);
        let a = bernoulli_matrix(m, n, 13);
        let mut theta = vec![0.0; n];
        theta[3] = 2.0;
        theta[30] = -1.5;
        let y = a.matvec(&theta);

        let rec = Fista::default()
            .with_nonnegative(false)
            .with_lambda_rel(0.005)
            .unwrap()
            .recover(&a, &y)
            .unwrap();
        let mut supp = rec.support(0.3);
        supp.sort_unstable();
        assert_eq!(supp, vec![3, 30]);
        assert!(rec.solution[30] < 0.0);
    }

    #[test]
    fn ista_and_fista_agree_on_solution() {
        let a = bernoulli_matrix(16, 32, 3);
        let mut theta = vec![0.0; 32];
        theta[8] = 1.0;
        let y = a.matvec(&theta);
        let f = Fista::default().recover(&a, &y).unwrap();
        let i = Fista::default()
            .with_acceleration(Acceleration::None)
            .with_max_iterations(20000)
            .recover(&a, &y)
            .unwrap();
        let d = crowdwifi_linalg::vector::distance(&f.solution, &i.solution);
        assert!(d < 1e-3, "ISTA/FISTA disagreement: {d}");
        // FISTA should converge in fewer iterations.
        assert!(f.iterations <= i.iterations);
    }

    #[test]
    fn zero_measurements_give_zero_solution() {
        let a = bernoulli_matrix(8, 16, 1);
        let rec = Fista::default().recover(&a, &[0.0; 8]).unwrap();
        assert!(rec.solution.iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn zero_matrix_handled() {
        let a = Matrix::zeros(4, 8);
        let rec = Fista::default().recover(&a, &[1.0; 4]).unwrap();
        assert!(rec.converged);
        assert_eq!(rec.solution, vec![0.0; 8]);
        assert!((rec.residual_norm - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_lambda() {
        assert!(Fista::default().with_lambda_rel(0.0).is_err());
        assert!(Fista::default().with_lambda_rel(1.0).is_err());
        assert!(Fista::default().with_lambda_rel(-0.5).is_err());
    }

    #[test]
    fn rejects_shape_mismatch() {
        let a = Matrix::zeros(4, 8);
        assert!(matches!(
            Fista::default().recover(&a, &[1.0; 3]),
            Err(SolverError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn noisy_recovery_stays_close() {
        let (m, n) = (32, 64);
        let a = bernoulli_matrix(m, n, 21);
        let mut theta = vec![0.0; n];
        theta[10] = 1.0;
        theta[50] = 1.0;
        let mut y = a.matvec(&theta);
        // Deterministic "noise" at roughly 30 dB SNR.
        for (i, yi) in y.iter_mut().enumerate() {
            *yi += 0.01 * ((i * 37) as f64).sin();
        }
        let rec = Fista::default()
            .with_lambda_rel(0.02)
            .unwrap()
            .recover(&a, &y)
            .unwrap();
        let mut supp = rec.support(0.3);
        supp.sort_unstable();
        assert_eq!(supp, vec![10, 50]);
    }
}
