//! ISTA / FISTA proximal-gradient solvers for the LASSO program.
//!
//! Solves `min_θ ½‖Aθ − y‖₂² + λ‖θ‖₁`, optionally with a `θ ≥ 0`
//! constraint. FISTA adds Nesterov momentum for an `O(1/k²)` rate, which
//! matters in the online pipeline where each sliding-window round solves
//! many small programs.

use crate::prox::{soft_threshold_nonneg_vec, soft_threshold_vec};
use crate::screen::{duality_gap, screen_columns};
use crate::{
    spectral_norm_sq, validate_problem, Recovery, Result, SolverError, SolverWorkspace,
    SparseRecovery,
};
use crowdwifi_linalg::vector;
use crowdwifi_linalg::Matrix;

/// How often (in iterations) the accelerated path evaluates the duality
/// gap and re-runs the screening test. The check costs two matrix–vector
/// products, so it is amortized over several cheap proximal steps.
const GAP_CHECK_EVERY: usize = 10;

/// Momentum variant used by [`Fista`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Acceleration {
    /// Plain ISTA (no momentum).
    None,
    /// Nesterov momentum (classic FISTA).
    #[default]
    Nesterov,
}

/// Proximal-gradient LASSO solver.
///
/// The default configuration matches what the CrowdWiFi pipeline needs:
/// accelerated, non-negative (AP indicators cannot be negative) and with a
/// data-scaled regularization weight.
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::Matrix;
/// use crowdwifi_sparsesolve::{Fista, SparseRecovery};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0]]);
/// let y = [2.0, 0.0];
/// let rec = Fista::default().recover(&a, &y)?;
/// // Sparsest consistent explanation puts the mass on column 0.
/// assert_eq!(rec.support(0.1), vec![0]);
/// # Ok::<(), crowdwifi_sparsesolve::SolverError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fista {
    lambda_rel: f64,
    max_iterations: usize,
    tolerance: f64,
    nonnegative: bool,
    acceleration: Acceleration,
    // Acceleration features, all off by default: the default solver
    // follows the classic iterate path bit-for-bit (the throughput
    // bench asserts this against a frozen seed implementation).
    screening: bool,
    gap_tolerance: f64,
    gram: bool,
    lipschitz: Option<f64>,
}

impl Default for Fista {
    fn default() -> Self {
        Fista {
            lambda_rel: 0.01,
            max_iterations: 2000,
            tolerance: 1e-8,
            nonnegative: true,
            acceleration: Acceleration::Nesterov,
            screening: false,
            gap_tolerance: 0.0,
            gram: false,
            lipschitz: None,
        }
    }
}

impl Fista {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the regularization weight **relative to** `‖Aᵀy‖_∞` (the
    /// smallest λ for which the solution is identically zero). Must lie
    /// in `(0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidParameter`] when out of range.
    pub fn with_lambda_rel(mut self, lambda_rel: f64) -> Result<Self> {
        if !(lambda_rel > 0.0 && lambda_rel < 1.0) {
            return Err(SolverError::InvalidParameter {
                name: "lambda_rel",
                reason: format!("must be in (0, 1), got {lambda_rel}"),
            });
        }
        self.lambda_rel = lambda_rel;
        Ok(self)
    }

    /// Sets the iteration cap (default 2000).
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }

    /// Sets the relative-change stopping tolerance (default `1e-8`).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidParameter`] for negative or
    /// non-finite values (matching the other solver builders).
    pub fn with_tolerance(mut self, tolerance: f64) -> Result<Self> {
        if !(tolerance >= 0.0 && tolerance.is_finite()) {
            return Err(SolverError::InvalidParameter {
                name: "tolerance",
                reason: format!("must be non-negative and finite, got {tolerance}"),
            });
        }
        self.tolerance = tolerance;
        Ok(self)
    }

    /// Enables or disables the `θ ≥ 0` constraint (default: enabled).
    pub fn with_nonnegative(mut self, nonnegative: bool) -> Self {
        self.nonnegative = nonnegative;
        self
    }

    /// Selects the momentum variant (default: Nesterov / FISTA).
    pub fn with_acceleration(mut self, acceleration: Acceleration) -> Self {
        self.acceleration = acceleration;
        self
    }

    /// Enables gap-safe screening (default: off): columns provably
    /// outside every optimal support are removed before and during the
    /// iteration, shrinking the per-step work without changing the
    /// optimum (see the crate's `screen` module for the rule).
    pub fn with_screening(mut self, screening: bool) -> Self {
        self.screening = screening;
        self
    }

    /// Enables duality-gap early stopping (default: off / `0.0`): the
    /// solve stops once `gap ≤ tol · primal`, a rigorous suboptimality
    /// certificate, typically long before the relative-change rule
    /// fires. `0.0` disables the check.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidParameter`] for negative or
    /// non-finite values.
    pub fn with_gap_tolerance(mut self, tol: f64) -> Result<Self> {
        if !(tol >= 0.0 && tol.is_finite()) {
            return Err(SolverError::InvalidParameter {
                name: "gap_tolerance",
                reason: format!("must be non-negative and finite, got {tol}"),
            });
        }
        self.gap_tolerance = tol;
        Ok(self)
    }

    /// Enables the Gram-matrix gradient path (default: off): `AᵀA` and
    /// `Aᵀy` are built once per solve and each gradient becomes the
    /// fused update `Gz − Aᵀy`, which skips the rows of `G` whose
    /// coefficient is zero — after thresholding the iterate is sparse,
    /// so most rows are skipped. Wins when iterations ≫ columns and
    /// compounds with screening (the Gram shrinks with the active set).
    /// The solver only routes gradients through the Gram while the
    /// active set is at most twice as wide as the measurement count —
    /// wider systems stay on the cheaper two-pass gradient until
    /// screening narrows them into the profitable regime.
    pub fn with_gram(mut self, gram: bool) -> Self {
        self.gram = gram;
        self
    }

    /// Overrides the Lipschitz constant `L = ‖A‖₂²` of the smooth part
    /// (default: estimated by 30 power iterations per solve). The
    /// pipeline's orthogonalized operators (Proposition 1) have
    /// orthonormal rows, hence exactly `L = 1` — passing it skips the
    /// estimation entirely.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidParameter`] unless `0 < l < ∞`.
    pub fn with_fixed_lipschitz(mut self, l: f64) -> Result<Self> {
        if !(l > 0.0 && l.is_finite()) {
            return Err(SolverError::InvalidParameter {
                name: "lipschitz",
                reason: format!("must be positive and finite, got {l}"),
            });
        }
        self.lipschitz = Some(l);
        Ok(self)
    }

    /// Whether the cached-Gram gradient pays for the current compacted
    /// shape. A Gram step costs `n²` flops against `2·m·n` for the
    /// two-pass gradient, so on the pipeline's wide systems (m ≪ n) it
    /// is a pessimization until screening has shrunk the active set;
    /// re-evaluated after every compaction so a solve can start on the
    /// two-pass path and switch to the Gram once it becomes narrow.
    fn gram_pays(&self, a_act: &Matrix) -> bool {
        self.gram && a_act.cols() <= 2 * a_act.rows()
    }

    /// Whether any acceleration feature (or a pending warm start in
    /// `ws`) routes this solve through the accelerated path.
    fn accelerated(&self, ws: &SolverWorkspace) -> bool {
        self.screening
            || self.gap_tolerance > 0.0
            || self.gram
            || self.lipschitz.is_some()
            || ws.has_warm_start()
    }
}

impl SparseRecovery for Fista {
    fn recover(&self, a: &Matrix, y: &[f64]) -> Result<Recovery> {
        self.recover_with(a, y, &mut SolverWorkspace::new())
    }

    fn recover_with(&self, a: &Matrix, y: &[f64], ws: &mut SolverWorkspace) -> Result<Recovery> {
        validate_problem(a, y)?;
        if self.accelerated(ws) {
            self.recover_accel(a, y, ws)
        } else {
            self.recover_classic(a, y, ws)
        }
    }

    fn recover_multi(
        &self,
        a: &Matrix,
        ys: &[Vec<f64>],
        ws: &mut SolverWorkspace,
    ) -> Result<Vec<Recovery>> {
        ws.clear_warm_start();
        for y in ys {
            validate_problem(a, y)?;
        }
        if ys.is_empty() {
            return Ok(Vec::new());
        }
        if self.screening {
            // Screening compacts a per-column active set, so the columns
            // stop sharing one operator after the first drop; fall back
            // to the per-column loop (each solve keeps its own
            // screening benefit).
            return ys.iter().map(|y| self.recover_with(a, y, ws)).collect();
        }
        self.recover_lockstep(a, ys, ws)
    }

    fn name(&self) -> &'static str {
        match self.acceleration {
            Acceleration::Nesterov => "fista",
            Acceleration::None => "ista",
        }
    }
}

impl Fista {
    /// The classic iterate path: bit-for-bit the historical solver, so
    /// the default configuration stays byte-identical to the frozen
    /// seed baseline asserted by the throughput bench.
    fn recover_classic(&self, a: &Matrix, y: &[f64], ws: &mut SolverWorkspace) -> Result<Recovery> {
        let n = a.cols();

        // Step size 1/L with L = ‖A‖₂² (Lipschitz constant of the smooth
        // part), padded slightly for the power-iteration error.
        let lipschitz = spectral_norm_sq(a, 30) * 1.02;
        if lipschitz == 0.0 {
            // A is the zero matrix: the minimizer is θ = 0.
            return Ok(Recovery {
                solution: vec![0.0; n],
                iterations: 0,
                residual_norm: vector::norm2(y),
                converged: true,
                screened_cols: 0,
                iterations_saved: 0,
            });
        }
        let step = 1.0 / lipschitz;

        // λ scaled to the problem: λ_max = ‖Aᵀy‖_∞ zeroes the solution.
        a.matvec_transposed_into(y, &mut ws.grad);
        let lambda = self.lambda_rel * vector::norm_inf(&ws.grad);

        ws.x.clear();
        ws.x.resize(n, 0.0);
        ws.z.clear();
        ws.z.resize(n, 0.0); // extrapolation point
        let mut t: f64 = 1.0;
        let mut iterations = 0;
        let mut converged = false;

        for k in 0..self.max_iterations {
            iterations = k + 1;
            // Gradient step at z: z − step · Aᵀ(Az − y). `x_alt` plays
            // the role of x_new until the swap below.
            a.matvec_into(&ws.z, &mut ws.m_scratch);
            vector::sub_into(&ws.m_scratch, y, &mut ws.m_scratch2);
            a.matvec_transposed_into(&ws.m_scratch2, &mut ws.grad);
            ws.x_alt.clear();
            ws.x_alt.extend_from_slice(&ws.z);
            vector::axpy(-step, &ws.grad, &mut ws.x_alt);
            // Proximal step.
            if self.nonnegative {
                soft_threshold_nonneg_vec(&mut ws.x_alt, step * lambda);
            } else {
                soft_threshold_vec(&mut ws.x_alt, step * lambda);
            }

            // Relative change stopping rule.
            let delta = vector::distance(&ws.x_alt, &ws.x);
            let scale = vector::norm2(&ws.x_alt).max(1e-12);

            match self.acceleration {
                Acceleration::Nesterov => {
                    let t_new = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
                    let beta = (t - 1.0) / t_new;
                    ws.z.clear();
                    ws.z.extend(
                        ws.x_alt
                            .iter()
                            .zip(&ws.x)
                            .map(|(&xn, &xo)| xn + beta * (xn - xo)),
                    );
                    t = t_new;
                }
                Acceleration::None => {
                    ws.z.clear();
                    ws.z.extend_from_slice(&ws.x_alt);
                }
            }
            // x = x_new without a clone; the stale old-x contents of
            // `x_alt` are fully overwritten next iteration.
            std::mem::swap(&mut ws.x, &mut ws.x_alt);

            if delta <= self.tolerance * scale {
                converged = true;
                break;
            }
        }

        a.matvec_into(&ws.x, &mut ws.m_scratch);
        vector::sub_into(&ws.m_scratch, y, &mut ws.m_scratch2);
        let residual_norm = vector::norm2(&ws.m_scratch2);
        Ok(Recovery {
            solution: ws.x.clone(),
            iterations,
            residual_norm,
            converged,
            screened_cols: 0,
            iterations_saved: if converged {
                self.max_iterations - iterations
            } else {
                0
            },
        })
    }

    /// The accelerated path: warm starts, gap-safe screening with a
    /// compacted active set, optional Gram gradient, optional fixed
    /// Lipschitz constant and duality-gap early stopping. Minimizes the
    /// same objective as the classic path — a different iterate route
    /// to the same optimum — so recovered supports are unchanged.
    fn recover_accel(&self, a: &Matrix, y: &[f64], ws: &mut SolverWorkspace) -> Result<Recovery> {
        let n = a.cols();
        let warm = ws.take_warm_start(n);

        let lipschitz = match self.lipschitz {
            Some(l) => l,
            None => spectral_norm_sq(a, 30) * 1.02,
        };
        if lipschitz == 0.0 {
            return Ok(Recovery {
                solution: vec![0.0; n],
                iterations: 0,
                residual_norm: vector::norm2(y),
                converged: true,
                screened_cols: 0,
                iterations_saved: 0,
            });
        }
        let step = 1.0 / lipschitz;

        // λ relative to ‖Aᵀy‖_∞, exactly as the classic path.
        let b_full = a.matvec_transposed(y);
        let lambda = self.lambda_rel * vector::norm_inf(&b_full);

        // Warm seed (projected onto the feasible set, non-finite → 0);
        // cold start is the zero vector.
        let mut x_full = warm.unwrap_or_else(|| vec![0.0; n]);
        for v in &mut x_full {
            if !v.is_finite() || (self.nonnegative && *v < 0.0) {
                *v = 0.0;
            }
        }

        // Initial gap + screening at x⁰. For a cold start the residual
        // is y and the correlations are Aᵀy (already computed); a warm
        // start pays two matvecs but its small gap screens far harder.
        let mut active: Vec<usize> = (0..n).collect();
        let col_norms: Vec<f64> = if self.screening {
            (0..n).map(|c| vector::norm2(&a.col(c))).collect()
        } else {
            Vec::new()
        };
        if self.screening && lambda > 0.0 {
            let cold = x_full.iter().all(|&v| v == 0.0);
            let (r, atr) = if cold {
                (y.to_vec(), b_full.clone())
            } else {
                let ax = a.matvec(&x_full);
                let r: Vec<f64> = y.iter().zip(&ax).map(|(yi, vi)| yi - vi).collect();
                let atr = a.matvec_transposed(&r);
                (r, atr)
            };
            let gap = duality_gap(
                y,
                &r,
                &atr,
                vector::norm1(&x_full),
                lambda,
                self.nonnegative,
            );
            screen_columns(
                &mut active,
                &atr,
                &gap,
                &col_norms,
                lambda,
                self.nonnegative,
            );
        }

        // Compacted problem over the active columns. Rebuilt whenever
        // screening shrinks the active set further.
        let mut a_act = a.select_cols(&active);
        let mut b_act: Vec<f64> = active.iter().map(|&j| b_full[j]).collect();
        let mut g_act = self.gram_pays(&a_act).then(|| a_act.gram());
        ws.x.clear();
        ws.x.extend(active.iter().map(|&j| x_full[j]));
        ws.z.clear();
        ws.z.extend_from_slice(&ws.x);

        let mut t: f64 = 1.0;
        let mut iterations = 0;
        let mut converged = false;

        for k in 0..self.max_iterations {
            iterations = k + 1;
            // Gradient at z: Aᵀ(Az − y), or the fused Gram form Gz − b.
            match &g_act {
                Some(g) => g.matvec_transposed_sub_into(&ws.z, &b_act, &mut ws.grad),
                None => {
                    a_act.matvec_into(&ws.z, &mut ws.m_scratch);
                    vector::sub_into(&ws.m_scratch, y, &mut ws.m_scratch2);
                    a_act.matvec_transposed_into(&ws.m_scratch2, &mut ws.grad);
                }
            }
            ws.x_alt.clear();
            ws.x_alt.extend_from_slice(&ws.z);
            vector::axpy(-step, &ws.grad, &mut ws.x_alt);
            if self.nonnegative {
                soft_threshold_nonneg_vec(&mut ws.x_alt, step * lambda);
            } else {
                soft_threshold_vec(&mut ws.x_alt, step * lambda);
            }

            let delta = vector::distance(&ws.x_alt, &ws.x);
            let scale = vector::norm2(&ws.x_alt).max(1e-12);

            match self.acceleration {
                Acceleration::Nesterov => {
                    let t_new = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
                    let beta = (t - 1.0) / t_new;
                    ws.z.clear();
                    ws.z.extend(
                        ws.x_alt
                            .iter()
                            .zip(&ws.x)
                            .map(|(&xn, &xo)| xn + beta * (xn - xo)),
                    );
                    t = t_new;
                }
                Acceleration::None => {
                    ws.z.clear();
                    ws.z.extend_from_slice(&ws.x_alt);
                }
            }
            std::mem::swap(&mut ws.x, &mut ws.x_alt);

            if delta <= self.tolerance * scale {
                converged = true;
                break;
            }

            // Periodic duality-gap check: rigorous early stopping and a
            // re-run of the screening test with the tightened gap.
            let check = self.gap_tolerance > 0.0 || self.screening;
            if check && iterations % GAP_CHECK_EVERY == 0 && lambda > 0.0 {
                a_act.matvec_into(&ws.x, &mut ws.m_scratch);
                // r = y − Ax lives in m_scratch2.
                vector::sub_into(y, &ws.m_scratch, &mut ws.m_scratch2);
                a_act.matvec_transposed_into(&ws.m_scratch2, &mut ws.n_scratch);
                let gap = duality_gap(
                    y,
                    &ws.m_scratch2,
                    &ws.n_scratch,
                    vector::norm1(&ws.x),
                    lambda,
                    self.nonnegative,
                );
                if self.gap_tolerance > 0.0
                    && gap.gap <= self.gap_tolerance * gap.primal.max(1e-300)
                {
                    converged = true;
                    break;
                }
                if self.screening {
                    let old_active = active.clone();
                    let dropped = screen_columns(
                        &mut active,
                        &ws.n_scratch,
                        &gap,
                        &col_norms,
                        lambda,
                        self.nonnegative,
                    );
                    if dropped > 0 {
                        // Compact the iterate and the momentum point to
                        // the surviving columns (the new active set is an
                        // ordered subsequence of the old one). Momentum
                        // is kept: the dropped coordinates are provably
                        // zero in every optimum, so zeroing them in `z`
                        // is a bounded perturbation, and the stopping
                        // rules (duality gap / relative change) certify
                        // the final iterate regardless of the momentum
                        // trajectory. Restarting here (z = x, t = 1) was
                        // measurably slower end to end.
                        let mut dst = 0;
                        for (i, &j) in old_active.iter().enumerate() {
                            if dst < active.len() && active[dst] == j {
                                ws.x[dst] = ws.x[i];
                                ws.z[dst] = ws.z[i];
                                dst += 1;
                            }
                        }
                        ws.x.truncate(active.len());
                        ws.z.truncate(active.len());
                        a_act = a.select_cols(&active);
                        b_act = active.iter().map(|&j| b_full[j]).collect();
                        g_act = self.gram_pays(&a_act).then(|| a_act.gram());
                    }
                }
            }
        }

        // Scatter back to the full column space.
        x_full.iter_mut().for_each(|v| *v = 0.0);
        for (i, &j) in active.iter().enumerate() {
            x_full[j] = ws.x[i];
        }
        a.matvec_into(&x_full, &mut ws.m_scratch);
        vector::sub_into(&ws.m_scratch, y, &mut ws.m_scratch2);
        let residual_norm = vector::norm2(&ws.m_scratch2);
        Ok(Recovery {
            solution: x_full,
            iterations,
            residual_norm,
            converged,
            screened_cols: n - active.len(),
            iterations_saved: if converged {
                self.max_iterations - iterations
            } else {
                0
            },
        })
    }

    /// Batched multi-RHS solve: every column marches in lockstep
    /// through the proximal-gradient iteration, sharing one Lipschitz
    /// estimate, one optional Gram matrix, and — via the batched
    /// kernels — one traversal of `A` (and `Aᵀ`) per gradient pass
    /// instead of one per column. Columns freeze as they converge.
    ///
    /// Each column's [`Recovery`] is bit-identical to a cold standalone
    /// [`SparseRecovery::recover_with`]: batching only changes *which
    /// column* is touched when, never the arithmetic sequence within a
    /// column.
    fn recover_lockstep(
        &self,
        a: &Matrix,
        ys: &[Vec<f64>],
        ws: &mut SolverWorkspace,
    ) -> Result<Vec<Recovery>> {
        let n = a.cols();
        let k_cols = ys.len();

        let lipschitz = match self.lipschitz {
            Some(l) => l,
            None => spectral_norm_sq(a, 30) * 1.02,
        };
        if lipschitz == 0.0 {
            return Ok(ys
                .iter()
                .map(|y| Recovery {
                    solution: vec![0.0; n],
                    iterations: 0,
                    residual_norm: vector::norm2(y),
                    converged: true,
                    screened_cols: 0,
                    iterations_saved: 0,
                })
                .collect());
        }
        let step = 1.0 / lipschitz;

        // One transposed pass computes every column's correlations Aᵀy.
        let mut bs: Vec<Vec<f64>> = vec![Vec::new(); k_cols];
        a.matvec_transposed_batch_into(ys, &mut bs);
        let lambdas: Vec<f64> = bs
            .iter()
            .map(|b| self.lambda_rel * vector::norm_inf(b))
            .collect();

        let gram = self.gram_pays(a).then(|| a.gram());

        let mut xs: Vec<Vec<f64>> = vec![vec![0.0; n]; k_cols];
        let mut zs: Vec<Vec<f64>> = vec![vec![0.0; n]; k_cols];
        let mut ts = vec![1.0_f64; k_cols];
        let mut iterations = vec![0_usize; k_cols];
        let mut converged = vec![false; k_cols];
        let mut done = vec![false; k_cols];

        // Batch scratch: `gather` stages the live columns' vectors
        // (moved in and out, never copied) for the fused kernel passes;
        // the rest are per-column outputs.
        let mut gather: Vec<Vec<f64>> = Vec::with_capacity(k_cols);
        let mut az: Vec<Vec<f64>> = vec![Vec::new(); k_cols];
        let mut residuals: Vec<Vec<f64>> = vec![Vec::new(); k_cols];
        let mut grads: Vec<Vec<f64>> = vec![Vec::new(); k_cols];

        let mut live: Vec<usize> = (0..k_cols).collect();
        let mut it = 0;
        while !live.is_empty() && it < self.max_iterations {
            it += 1;
            // Gradients at z for all live columns: one batched A / Aᵀ
            // traversal, or one shared-Gram pass per column.
            match &gram {
                Some(g) => {
                    for (idx, &j) in live.iter().enumerate() {
                        g.matvec_transposed_sub_into(&zs[j], &bs[j], &mut grads[idx]);
                    }
                }
                None => {
                    gather.clear();
                    for &j in &live {
                        gather.push(std::mem::take(&mut zs[j]));
                    }
                    a.matvec_batch_into(&gather, &mut az[..live.len()]);
                    for (idx, &j) in live.iter().enumerate() {
                        zs[j] = std::mem::take(&mut gather[idx]);
                    }
                    for (idx, &j) in live.iter().enumerate() {
                        vector::sub_into(&az[idx], &ys[j], &mut residuals[idx]);
                    }
                    a.matvec_transposed_batch_into(
                        &residuals[..live.len()],
                        &mut grads[..live.len()],
                    );
                }
            }

            // Proximal + momentum step per column — the exact
            // single-RHS iteration body, with `ws.x_alt` as the shared
            // x_new scratch.
            for (idx, &j) in live.iter().enumerate() {
                iterations[j] = it;
                ws.x_alt.clear();
                ws.x_alt.extend_from_slice(&zs[j]);
                vector::axpy(-step, &grads[idx], &mut ws.x_alt);
                if self.nonnegative {
                    soft_threshold_nonneg_vec(&mut ws.x_alt, step * lambdas[j]);
                } else {
                    soft_threshold_vec(&mut ws.x_alt, step * lambdas[j]);
                }

                let delta = vector::distance(&ws.x_alt, &xs[j]);
                let scale = vector::norm2(&ws.x_alt).max(1e-12);

                match self.acceleration {
                    Acceleration::Nesterov => {
                        let t_new = 0.5 * (1.0 + (1.0 + 4.0 * ts[j] * ts[j]).sqrt());
                        let beta = (ts[j] - 1.0) / t_new;
                        zs[j].clear();
                        zs[j].extend(
                            ws.x_alt
                                .iter()
                                .zip(&xs[j])
                                .map(|(&xn, &xo)| xn + beta * (xn - xo)),
                        );
                        ts[j] = t_new;
                    }
                    Acceleration::None => {
                        zs[j].clear();
                        zs[j].extend_from_slice(&ws.x_alt);
                    }
                }
                std::mem::swap(&mut xs[j], &mut ws.x_alt);

                if delta <= self.tolerance * scale {
                    done[j] = true;
                    converged[j] = true;
                }
            }

            // Periodic duality-gap certificate, batched across the
            // columns still running — they share the iteration counter,
            // so the every-GAP_CHECK_EVERY cadence lines up exactly
            // with the single-RHS schedule.
            if self.gap_tolerance > 0.0 && it % GAP_CHECK_EVERY == 0 {
                let checking: Vec<usize> = live
                    .iter()
                    .copied()
                    .filter(|&j| !done[j] && lambdas[j] > 0.0)
                    .collect();
                if !checking.is_empty() {
                    gather.clear();
                    for &j in &checking {
                        gather.push(std::mem::take(&mut xs[j]));
                    }
                    a.matvec_batch_into(&gather, &mut az[..checking.len()]);
                    for (idx, &j) in checking.iter().enumerate() {
                        xs[j] = std::mem::take(&mut gather[idx]);
                    }
                    for (idx, &j) in checking.iter().enumerate() {
                        // r = y − Ax, as in the single-RHS gap check.
                        vector::sub_into(&ys[j], &az[idx], &mut residuals[idx]);
                    }
                    a.matvec_transposed_batch_into(
                        &residuals[..checking.len()],
                        &mut grads[..checking.len()],
                    );
                    for (idx, &j) in checking.iter().enumerate() {
                        let gap = duality_gap(
                            &ys[j],
                            &residuals[idx],
                            &grads[idx],
                            vector::norm1(&xs[j]),
                            lambdas[j],
                            self.nonnegative,
                        );
                        if gap.gap <= self.gap_tolerance * gap.primal.max(1e-300) {
                            done[j] = true;
                            converged[j] = true;
                        }
                    }
                }
            }

            live.retain(|&j| !done[j]);
        }

        // Final residuals: one batched pass over all solutions.
        a.matvec_batch_into(&xs, &mut az);
        let mut out = Vec::with_capacity(k_cols);
        for (j, x) in xs.into_iter().enumerate() {
            vector::sub_into(&az[j], &ys[j], &mut ws.m_scratch2);
            let residual_norm = vector::norm2(&ws.m_scratch2);
            out.push(Recovery {
                solution: x,
                iterations: iterations[j],
                residual_norm,
                converged: converged[j],
                screened_cols: 0,
                iterations_saved: if converged[j] {
                    self.max_iterations - iterations[j]
                } else {
                    0
                },
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random ±1/√M Bernoulli sensing matrix; such
    /// matrices satisfy RIP with high probability.
    fn bernoulli_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let scale = 1.0 / (m as f64).sqrt();
        Matrix::from_fn(m, n, |_, _| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bit = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1;
            if bit == 1 {
                scale
            } else {
                -scale
            }
        })
    }

    #[test]
    fn recovers_sparse_nonnegative_signal() {
        let (m, n) = (24, 64);
        let a = bernoulli_matrix(m, n, 7);
        let mut theta = vec![0.0; n];
        theta[5] = 1.0;
        theta[40] = 1.0;
        theta[61] = 1.0;
        let y = a.matvec(&theta);

        let rec = Fista::default()
            .with_lambda_rel(0.005)
            .unwrap()
            .recover(&a, &y)
            .unwrap();
        let supp = rec.support(0.3);
        let mut sorted = supp.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![5, 40, 61], "support {supp:?}");
    }

    #[test]
    fn signed_recovery_needs_unconstrained_mode() {
        let (m, n) = (24, 48);
        let a = bernoulli_matrix(m, n, 13);
        let mut theta = vec![0.0; n];
        theta[3] = 2.0;
        theta[30] = -1.5;
        let y = a.matvec(&theta);

        let rec = Fista::default()
            .with_nonnegative(false)
            .with_lambda_rel(0.005)
            .unwrap()
            .recover(&a, &y)
            .unwrap();
        let mut supp = rec.support(0.3);
        supp.sort_unstable();
        assert_eq!(supp, vec![3, 30]);
        assert!(rec.solution[30] < 0.0);
    }

    #[test]
    fn ista_and_fista_agree_on_solution() {
        let a = bernoulli_matrix(16, 32, 3);
        let mut theta = vec![0.0; 32];
        theta[8] = 1.0;
        let y = a.matvec(&theta);
        let f = Fista::default().recover(&a, &y).unwrap();
        let i = Fista::default()
            .with_acceleration(Acceleration::None)
            .with_max_iterations(20000)
            .recover(&a, &y)
            .unwrap();
        let d = crowdwifi_linalg::vector::distance(&f.solution, &i.solution);
        assert!(d < 1e-3, "ISTA/FISTA disagreement: {d}");
        // FISTA should converge in fewer iterations.
        assert!(f.iterations <= i.iterations);
    }

    #[test]
    fn zero_measurements_give_zero_solution() {
        let a = bernoulli_matrix(8, 16, 1);
        let rec = Fista::default().recover(&a, &[0.0; 8]).unwrap();
        assert!(rec.solution.iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn zero_matrix_handled() {
        let a = Matrix::zeros(4, 8);
        let rec = Fista::default().recover(&a, &[1.0; 4]).unwrap();
        assert!(rec.converged);
        assert_eq!(rec.solution, vec![0.0; 8]);
        assert!((rec.residual_norm - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_lambda() {
        assert!(Fista::default().with_lambda_rel(0.0).is_err());
        assert!(Fista::default().with_lambda_rel(1.0).is_err());
        assert!(Fista::default().with_lambda_rel(-0.5).is_err());
    }

    #[test]
    fn rejects_bad_tolerances() {
        assert!(Fista::default().with_tolerance(-1e-9).is_err());
        assert!(Fista::default().with_tolerance(f64::NAN).is_err());
        assert!(Fista::default().with_tolerance(0.0).is_ok());
        assert!(Fista::default().with_gap_tolerance(-1.0).is_err());
        assert!(Fista::default().with_gap_tolerance(1e-6).is_ok());
        assert!(Fista::default().with_fixed_lipschitz(0.0).is_err());
        assert!(Fista::default()
            .with_fixed_lipschitz(f64::INFINITY)
            .is_err());
        assert!(Fista::default().with_fixed_lipschitz(1.0).is_ok());
    }

    /// The accelerated path (screening + Gram + gap stop) must land on
    /// the same optimum as the classic path: identical support, tiny
    /// coefficient distance, and a strictly reduced iteration count.
    #[test]
    fn accelerated_path_matches_classic_support() {
        let (m, n) = (24, 96);
        let a = bernoulli_matrix(m, n, 17);
        let mut theta = vec![0.0; n];
        theta[3] = 1.0;
        theta[47] = 0.8;
        theta[90] = 1.2;
        let y = a.matvec(&theta);

        let classic = Fista::default().recover(&a, &y).unwrap();
        let accel = Fista::default()
            .with_screening(true)
            .with_gram(true)
            .with_gap_tolerance(1e-10)
            .unwrap()
            .recover(&a, &y)
            .unwrap();
        assert_eq!(accel.support(0.3), classic.support(0.3));
        let d = crowdwifi_linalg::vector::distance(&accel.solution, &classic.solution);
        assert!(d < 1e-4, "accel drifted from classic by {d}");
        assert!(accel.screened_cols > 0, "screening removed nothing");
        assert!(
            accel.iterations <= classic.iterations,
            "accel took {} iterations vs classic {}",
            accel.iterations,
            classic.iterations
        );
    }

    /// A warm start at (near) the solution converges almost instantly
    /// and is consumed exactly once.
    #[test]
    fn warm_start_cuts_iterations_and_is_consumed() {
        let (m, n) = (20, 64);
        let a = bernoulli_matrix(m, n, 29);
        let mut theta = vec![0.0; n];
        theta[10] = 1.0;
        theta[55] = 1.0;
        let y = a.matvec(&theta);
        let solver = Fista::default().with_gap_tolerance(1e-8).unwrap();

        let mut ws = SolverWorkspace::new();
        let cold = solver.recover_with(&a, &y, &mut ws).unwrap();
        ws.set_warm_start(&cold.solution);
        let warm = solver.recover_with(&a, &y, &mut ws).unwrap();
        assert!(!ws.has_warm_start(), "seed must be consumed");
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        let mut sw = warm.support(0.3);
        let mut sc = cold.support(0.3);
        sw.sort_unstable();
        sc.sort_unstable();
        assert_eq!(sw, sc);
    }

    /// A mis-sized warm seed is discarded and the solve starts cold.
    #[test]
    fn mismatched_warm_start_is_discarded() {
        let a = bernoulli_matrix(16, 32, 5);
        let mut theta = vec![0.0; 32];
        theta[8] = 1.0;
        let y = a.matvec(&theta);
        let solver = Fista::default().with_gap_tolerance(1e-8).unwrap();
        let mut ws = SolverWorkspace::new();
        let baseline = solver.recover_with(&a, &y, &mut ws).unwrap();
        ws.set_warm_start(&[1.0; 7]); // wrong length
        let rec = solver.recover_with(&a, &y, &mut ws).unwrap();
        assert!(!ws.has_warm_start());
        assert_eq!(rec.solution, baseline.solution);
        assert_eq!(rec.iterations, baseline.iterations);
    }

    /// The fixed-Lipschitz override must reproduce the estimated-L
    /// solution on an operator whose norm is known exactly (orthonormal
    /// rows → L = 1).
    #[test]
    fn fixed_lipschitz_matches_estimated_on_orthonormal_rows() {
        let a = Matrix::identity(12);
        let mut y = vec![0.0; 12];
        y[2] = 3.0;
        y[9] = 1.5;
        let est = Fista::default().recover(&a, &y).unwrap();
        let fixed = Fista::default()
            .with_fixed_lipschitz(1.0)
            .unwrap()
            .recover(&a, &y)
            .unwrap();
        assert_eq!(fixed.support(0.3), est.support(0.3));
        let d = crowdwifi_linalg::vector::distance(&fixed.solution, &est.solution);
        assert!(d < 1e-6, "fixed-L drifted by {d}");
    }

    /// Signed (unconstrained) screening must also preserve the support,
    /// including negative coefficients.
    #[test]
    fn signed_screening_preserves_negative_support() {
        let (m, n) = (24, 72);
        let a = bernoulli_matrix(m, n, 41);
        let mut theta = vec![0.0; n];
        theta[6] = 2.0;
        theta[60] = -1.5;
        let y = a.matvec(&theta);
        let base = Fista::default()
            .with_nonnegative(false)
            .recover(&a, &y)
            .unwrap();
        let accel = Fista::default()
            .with_nonnegative(false)
            .with_screening(true)
            .with_gap_tolerance(1e-10)
            .unwrap()
            .recover(&a, &y)
            .unwrap();
        assert_eq!(accel.support(0.3), base.support(0.3));
        assert!(accel.solution[60] < 0.0);
        assert!(accel.screened_cols > 0);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let a = Matrix::zeros(4, 8);
        assert!(matches!(
            Fista::default().recover(&a, &[1.0; 3]),
            Err(SolverError::ShapeMismatch { .. })
        ));
    }

    fn batch_problem(m: usize, n: usize, seed: u64, rhs: usize) -> (Matrix, Vec<Vec<f64>>) {
        let a = bernoulli_matrix(m, n, seed);
        let ys = (0..rhs)
            .map(|s| {
                let mut theta = vec![0.0; n];
                theta[(5 + 11 * s) % n] = 1.0 + s as f64 * 0.25;
                theta[(37 * (s + 1)) % n] = 0.8;
                a.matvec(&theta)
            })
            .collect();
        (a, ys)
    }

    /// The batched entry point's contract: every column of
    /// `recover_multi` is bit-identical to a cold standalone
    /// `recover_with`, across the classic path, every acceleration
    /// feature, and the screening fallback.
    #[test]
    fn multi_rhs_matches_solo_bitwise() {
        let configs = [
            Fista::default(),
            Fista::default()
                .with_acceleration(Acceleration::None)
                .with_max_iterations(400),
            Fista::default().with_gap_tolerance(1e-9).unwrap(),
            Fista::default().with_gram(true),
            Fista::default().with_nonnegative(false),
            Fista::default().with_fixed_lipschitz(1.5).unwrap(),
            Fista::default()
                .with_screening(true)
                .with_gap_tolerance(1e-9)
                .unwrap(),
        ];
        // Wide (two-pass gradients) and narrow (Gram pays) shapes.
        let problems = [batch_problem(20, 56, 31, 4), batch_problem(24, 40, 43, 3)];
        for solver in &configs {
            for (a, ys) in &problems {
                let mut ws = SolverWorkspace::new();
                let multi = solver.recover_multi(a, ys, &mut ws).unwrap();
                assert_eq!(multi.len(), ys.len());
                for (y, rec) in ys.iter().zip(&multi) {
                    let solo = solver
                        .recover_with(a, y, &mut SolverWorkspace::new())
                        .unwrap();
                    assert_eq!(rec.solution, solo.solution, "{} drifted", solver.name());
                    assert_eq!(rec.iterations, solo.iterations, "{}", solver.name());
                    assert_eq!(
                        rec.residual_norm.to_bits(),
                        solo.residual_norm.to_bits(),
                        "{} residual drifted",
                        solver.name()
                    );
                    assert_eq!(rec.converged, solo.converged, "{}", solver.name());
                    assert_eq!(rec.screened_cols, solo.screened_cols, "{}", solver.name());
                    assert_eq!(
                        rec.iterations_saved,
                        solo.iterations_saved,
                        "{}",
                        solver.name()
                    );
                }
            }
        }
    }

    /// A pending warm-start seed (inherently per-column) must be
    /// dropped by the batched path: every column starts cold.
    #[test]
    fn multi_rhs_ignores_pending_warm_start() {
        let (a, ys) = batch_problem(16, 32, 19, 2);
        let solver = Fista::default().with_gap_tolerance(1e-8).unwrap();
        let cold = solver.recover(&a, &ys[0]).unwrap();
        let mut ws = SolverWorkspace::new();
        ws.set_warm_start(&cold.solution);
        let multi = solver.recover_multi(&a, &ys, &mut ws).unwrap();
        assert!(!ws.has_warm_start(), "seed must be cleared");
        assert_eq!(multi[0].solution, cold.solution);
        assert_eq!(multi[0].iterations, cold.iterations);
    }

    #[test]
    fn multi_rhs_edge_cases() {
        let a = bernoulli_matrix(8, 16, 3);
        let mut ws = SolverWorkspace::new();
        assert!(Fista::default()
            .recover_multi(&a, &[], &mut ws)
            .unwrap()
            .is_empty());
        let bad = vec![vec![1.0; 7]];
        assert!(matches!(
            Fista::default().recover_multi(&a, &bad, &mut ws),
            Err(SolverError::ShapeMismatch { .. })
        ));
        // Zero operator: every column is the zero solution.
        let z = Matrix::zeros(4, 8);
        let ys = vec![vec![1.0; 4], vec![2.0; 4]];
        let recs = Fista::default().recover_multi(&z, &ys, &mut ws).unwrap();
        for (rec, y) in recs.iter().zip(&ys) {
            assert!(rec.converged);
            assert_eq!(rec.solution, vec![0.0; 8]);
            assert_eq!(
                rec.residual_norm.to_bits(),
                vector::norm2(y).to_bits(),
                "zero-operator residual must be ‖y‖"
            );
        }
    }

    #[test]
    fn noisy_recovery_stays_close() {
        let (m, n) = (32, 64);
        let a = bernoulli_matrix(m, n, 21);
        let mut theta = vec![0.0; n];
        theta[10] = 1.0;
        theta[50] = 1.0;
        let mut y = a.matvec(&theta);
        // Deterministic "noise" at roughly 30 dB SNR.
        for (i, yi) in y.iter_mut().enumerate() {
            *yi += 0.01 * ((i * 37) as f64).sin();
        }
        let rec = Fista::default()
            .with_lambda_rel(0.02)
            .unwrap()
            .recover(&a, &y)
            .unwrap();
        let mut supp = rec.support(0.3);
        supp.sort_unstable();
        assert_eq!(supp, vec![10, 50]);
    }
}
