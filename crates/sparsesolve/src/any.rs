//! Enum dispatch over all solver families.
//!
//! [`AnySolver`] lets configuration (the CS pipeline, the benches) pick
//! the ℓ1 solver at runtime while staying `Clone + Debug` (a boxed
//! trait object would not be).

use crate::admm::{AdmmLasso, BasisPursuit};
use crate::fista::Fista;
use crate::irls::Irls;
use crate::omp::Omp;
use crate::{Recovery, Result, SolverWorkspace, SparseRecovery};
use crowdwifi_linalg::Matrix;

/// A runtime-selected sparse-recovery solver.
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::Matrix;
/// use crowdwifi_sparsesolve::any::AnySolver;
/// use crowdwifi_sparsesolve::SparseRecovery;
///
/// let solvers = [AnySolver::default_fista(), AnySolver::default_omp()];
/// let a = Matrix::identity(3);
/// for s in &solvers {
///     let rec = s.recover(&a, &[2.0, 0.0, 0.0])?;
///     assert_eq!(rec.support(0.5), vec![0], "{} failed", s.name());
/// }
/// # Ok::<(), crowdwifi_sparsesolve::SolverError>(())
/// ```
#[derive(Debug, Clone)]
pub enum AnySolver {
    /// Proximal-gradient LASSO (ISTA/FISTA).
    Fista(Fista),
    /// ADMM LASSO.
    AdmmLasso(AdmmLasso),
    /// ADMM equality-constrained basis pursuit.
    BasisPursuit(BasisPursuit),
    /// Orthogonal matching pursuit.
    Omp(Omp),
    /// Iteratively reweighted least squares.
    Irls(Irls),
}

impl AnySolver {
    /// FISTA with its default configuration.
    pub fn default_fista() -> Self {
        AnySolver::Fista(Fista::default())
    }

    /// ADMM LASSO with its default configuration.
    pub fn default_admm() -> Self {
        AnySolver::AdmmLasso(AdmmLasso::default())
    }

    /// OMP selecting at most 4 atoms (a sensible per-AP budget).
    pub fn default_omp() -> Self {
        AnySolver::Omp(Omp::new(4))
    }

    /// IRLS with its default configuration.
    pub fn default_irls() -> Self {
        AnySolver::Irls(Irls::default())
    }
}

/// Records one solve outcome into the process-wide [`crowdwifi_obs`]
/// registry (a no-op unless that registry is enabled, e.g. via
/// `CROWDWIFI_OBS=1`). Keyed by solver family so a pipeline run shows
/// per-family convergence behaviour.
fn record_solve(name: &'static str, result: &Result<Recovery>) {
    let reg = crowdwifi_obs::global();
    if !reg.is_enabled() {
        return;
    }
    reg.counter(&format!("sparsesolve.{name}.solves")).inc();
    match result {
        Ok(rec) => record_recovery(reg, name, rec),
        Err(_) => {
            reg.counter(&format!("sparsesolve.{name}.errors")).inc();
        }
    }
}

/// The per-[`Recovery`] portion of [`record_solve`], shared with the
/// batched path (which records one outcome per right-hand side).
fn record_recovery(reg: &crowdwifi_obs::Registry, name: &'static str, rec: &Recovery) {
    reg.histogram(
        &format!("sparsesolve.{name}.iterations"),
        crowdwifi_obs::ITERATION_BOUNDS,
    )
    .observe(rec.iterations as f64);
    if !rec.converged {
        reg.counter(&format!("sparsesolve.{name}.unconverged"))
            .inc();
    }
    // Acceleration accounting: columns removed by gap-safe
    // screening and iteration-budget headroom from early stops.
    reg.counter(&format!("sparsesolve.{name}.screened_cols"))
        .add(rec.screened_cols as u64);
    reg.counter(&format!("sparsesolve.{name}.iterations_saved"))
        .add(rec.iterations_saved as u64);
}

/// Records one batched multi-RHS solve: per-column outcomes under the
/// solver-family keys (so batched and solo solves aggregate together)
/// plus `sparsesolve.kernel.*` counters tracking how much work the
/// batched entry point absorbs and which kernel dispatch served it.
fn record_multi(name: &'static str, rhs: usize, result: &Result<Vec<Recovery>>) {
    let reg = crowdwifi_obs::global();
    if !reg.is_enabled() {
        return;
    }
    reg.counter("sparsesolve.kernel.batches").inc();
    reg.counter("sparsesolve.kernel.batched_rhs")
        .add(rhs as u64);
    let mode = if crowdwifi_linalg::kernels::vectorized() {
        "sparsesolve.kernel.vectorized_batches"
    } else {
        "sparsesolve.kernel.scalar_batches"
    };
    reg.counter(mode).inc();
    match result {
        Ok(recs) => {
            reg.counter(&format!("sparsesolve.{name}.solves"))
                .add(recs.len() as u64);
            for rec in recs {
                record_recovery(reg, name, rec);
            }
        }
        Err(_) => {
            reg.counter(&format!("sparsesolve.{name}.errors")).inc();
        }
    }
}

impl SparseRecovery for AnySolver {
    fn recover(&self, a: &Matrix, y: &[f64]) -> Result<Recovery> {
        let result = match self {
            AnySolver::Fista(s) => s.recover(a, y),
            AnySolver::AdmmLasso(s) => s.recover(a, y),
            AnySolver::BasisPursuit(s) => s.recover(a, y),
            AnySolver::Omp(s) => s.recover(a, y),
            AnySolver::Irls(s) => s.recover(a, y),
        };
        record_solve(self.name(), &result);
        result
    }

    fn recover_with(&self, a: &Matrix, y: &[f64], ws: &mut SolverWorkspace) -> Result<Recovery> {
        let result = match self {
            AnySolver::Fista(s) => s.recover_with(a, y, ws),
            AnySolver::AdmmLasso(s) => s.recover_with(a, y, ws),
            AnySolver::BasisPursuit(s) => s.recover_with(a, y, ws),
            AnySolver::Omp(s) => s.recover_with(a, y, ws),
            AnySolver::Irls(s) => s.recover_with(a, y, ws),
        };
        record_solve(self.name(), &result);
        result
    }

    fn recover_multi(
        &self,
        a: &Matrix,
        ys: &[Vec<f64>],
        ws: &mut SolverWorkspace,
    ) -> Result<Vec<Recovery>> {
        let result = match self {
            AnySolver::Fista(s) => s.recover_multi(a, ys, ws),
            AnySolver::AdmmLasso(s) => s.recover_multi(a, ys, ws),
            AnySolver::BasisPursuit(s) => s.recover_multi(a, ys, ws),
            AnySolver::Omp(s) => s.recover_multi(a, ys, ws),
            AnySolver::Irls(s) => s.recover_multi(a, ys, ws),
        };
        record_multi(self.name(), ys.len(), &result);
        result
    }

    fn name(&self) -> &'static str {
        match self {
            AnySolver::Fista(s) => s.name(),
            AnySolver::AdmmLasso(s) => s.name(),
            AnySolver::BasisPursuit(s) => s.name(),
            AnySolver::Omp(s) => s.name(),
            AnySolver::Irls(s) => s.name(),
        }
    }
}

impl From<Fista> for AnySolver {
    fn from(s: Fista) -> Self {
        AnySolver::Fista(s)
    }
}

impl From<AdmmLasso> for AnySolver {
    fn from(s: AdmmLasso) -> Self {
        AnySolver::AdmmLasso(s)
    }
}

impl From<BasisPursuit> for AnySolver {
    fn from(s: BasisPursuit) -> Self {
        AnySolver::BasisPursuit(s)
    }
}

impl From<Omp> for AnySolver {
    fn from(s: Omp) -> Self {
        AnySolver::Omp(s)
    }
}

impl From<Irls> for AnySolver {
    fn from(s: Irls) -> Self {
        AnySolver::Irls(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bernoulli_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let scale = 1.0 / (m as f64).sqrt();
        Matrix::from_fn(m, n, |_, _| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            if (state.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1 == 1 {
                scale
            } else {
                -scale
            }
        })
    }

    #[test]
    fn every_family_recovers_the_same_support() {
        let (m, n) = (20, 48);
        let a = bernoulli_matrix(m, n, 21);
        let mut theta = vec![0.0; n];
        theta[5] = 1.0;
        theta[30] = 1.5;
        let y = a.matvec(&theta);
        for solver in [
            AnySolver::default_fista(),
            AnySolver::default_admm(),
            AnySolver::from(BasisPursuit::default()),
            AnySolver::default_omp(),
            AnySolver::default_irls(),
        ] {
            let rec = solver.recover(&a, &y).unwrap();
            let mut supp = rec.support(0.3);
            supp.sort_unstable();
            assert_eq!(supp, vec![5, 30], "{} missed the support", solver.name());
        }
    }

    #[test]
    fn solves_record_into_enabled_global_registry() {
        if !crowdwifi_obs::RECORDING {
            return;
        }
        let reg = crowdwifi_obs::global();
        let was_enabled = reg.is_enabled();
        reg.set_enabled(true);
        let key = "sparsesolve.fista.solves";
        let before = reg.snapshot().counters.get(key).copied().unwrap_or(0);
        let a = Matrix::identity(3);
        AnySolver::default_fista()
            .recover(&a, &[2.0, 0.0, 0.0])
            .unwrap();
        let after = reg.snapshot().counters[key];
        reg.set_enabled(was_enabled);
        // Delta, not an absolute: other tests in this binary may solve
        // concurrently while the registry is enabled.
        assert!(after > before, "solve counter did not advance");
        assert!(reg
            .snapshot()
            .histograms
            .contains_key("sparsesolve.fista.iterations"));
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            AnySolver::default_fista().name(),
            AnySolver::default_admm().name(),
            AnySolver::from(BasisPursuit::default()).name(),
            AnySolver::default_omp().name(),
            AnySolver::default_irls().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
