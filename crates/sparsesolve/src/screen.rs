//! Gap-safe screening and duality-gap machinery for the LASSO solvers.
//!
//! For `min_x P(x) = ½‖Ax − y‖² + λ‖x‖₁` (optionally `x ≥ 0`), any
//! residual `r = y − Ax` yields a dual-feasible point `θ = r / α` with
//! `α = max(λ, c)`, where `c` is the largest column correlation with
//! the residual (`max_j |aⱼᵀr|`, one-sided for the non-negative
//! program). The duality gap `G = P(x) − D(θ)` then bounds the distance
//! of `θ` to the dual optimum `θ*` by `‖θ − θ*‖ ≤ ρ = √(2G)/λ`, so any
//! column with
//!
//! ```text
//! |aⱼᵀθ| + ρ‖aⱼ‖₂ < 1
//! ```
//!
//! satisfies `|aⱼᵀθ*| < 1` and is provably zero in *every* primal
//! optimum — it can be removed from the problem without changing the
//! solution (Fercoq, Gramfort & Salmon, "Mind the duality gap: safer
//! rules for the lasso", ICML 2015). The test is re-run as the solver
//! tightens the gap, so the active set keeps shrinking.

use crowdwifi_linalg::vector;

/// Safety margin on the unit sphere-test threshold: screening must be
/// conservative under floating-point error, so a column is discarded
/// only when its bound is below `1 − MARGIN`.
const MARGIN: f64 = 1e-9;

/// Duality-gap evaluation at one iterate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GapState {
    /// Primal objective `½‖r‖² + λ‖x‖₁`.
    pub primal: f64,
    /// Duality gap `P(x) − D(r/α)`, clamped to be non-negative.
    pub gap: f64,
    /// Dual feasibility scaling `α = max(λ, c)`.
    pub alpha: f64,
}

/// Evaluates the duality gap at an iterate with residual `r = y − Ax`
/// and column correlations `atr = Aᵀr` (over the columns still in
/// play — screening w.r.t. the reduced problem stays safe because
/// already-screened columns are provably zero in every optimum).
///
/// `x_l1` is `‖x‖₁` of the iterate. With `β = λ/α ≤ 1` the gap expands
/// to `½‖r‖²(1 + β²) − β⟨y, r⟩ + λ‖x‖₁`, needing only dot products.
pub(crate) fn duality_gap(
    y: &[f64],
    r: &[f64],
    atr: &[f64],
    x_l1: f64,
    lambda: f64,
    nonnegative: bool,
) -> GapState {
    let r_sq = vector::dot(r, r);
    let primal = 0.5 * r_sq + lambda * x_l1;
    // Largest correlation: one-sided for the non-negative program (its
    // dual only constrains aⱼᵀθ ≤ 1, never from below).
    let c = if nonnegative {
        atr.iter().fold(0.0_f64, |m, &v| m.max(v))
    } else {
        vector::norm_inf(atr)
    };
    let alpha = c.max(lambda);
    if alpha <= 0.0 {
        // λ = 0 and no positive correlation: no informative dual point.
        return GapState {
            primal,
            gap: primal.max(0.0),
            alpha: 0.0,
        };
    }
    let beta = lambda / alpha;
    let y_dot_r = vector::dot(y, r);
    let gap = (0.5 * r_sq * (1.0 + beta * beta) - beta * y_dot_r + lambda * x_l1).max(0.0);
    GapState { primal, gap, alpha }
}

/// Applies the gap-safe sphere test, retaining in `active` only the
/// columns that may still enter the support. `atr` is indexed like
/// `active` (the compacted problem); `col_norms` is indexed by the
/// *original* column id stored in `active`. Returns how many columns
/// were discarded.
pub(crate) fn screen_columns(
    active: &mut Vec<usize>,
    atr: &[f64],
    gap: &GapState,
    col_norms: &[f64],
    lambda: f64,
    nonnegative: bool,
) -> usize {
    debug_assert_eq!(active.len(), atr.len(), "atr must match the active set");
    if lambda <= 0.0 || gap.alpha <= 0.0 || !gap.gap.is_finite() {
        return 0;
    }
    let radius = (2.0 * gap.gap).sqrt() / lambda;
    let before = active.len();
    let mut kept = 0;
    for i in 0..before {
        let corr = atr[i] / gap.alpha;
        let bound = if nonnegative { corr } else { corr.abs() } + radius * col_norms[active[i]];
        if bound >= 1.0 - MARGIN {
            active[kept] = active[i];
            kept += 1;
        }
    }
    active.truncate(kept);
    before - kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdwifi_linalg::Matrix;

    /// Identity sensing: the LASSO solution is soft thresholding, so
    /// the support and the gap at the optimum are known in closed form.
    #[test]
    fn gap_vanishes_at_the_optimum() {
        let a = Matrix::identity(3);
        let y = [5.0, 0.0, 1.0];
        let lambda = 0.5;
        // Optimum of ½‖x − y‖² + λ‖x‖₁: soft threshold of y.
        let x = [4.5, 0.0, 0.5];
        let r: Vec<f64> = y.iter().zip(&x).map(|(yi, xi)| yi - xi).collect();
        let atr = a.matvec_transposed(&r);
        let x_l1: f64 = x.iter().map(|v: &f64| v.abs()).sum();
        let g = duality_gap(&y, &r, &atr, x_l1, lambda, false);
        assert!(g.gap < 1e-12, "gap at optimum: {}", g.gap);
        assert!(g.primal > 0.0);
    }

    #[test]
    fn screening_discards_only_non_support_columns() {
        let a = Matrix::identity(4);
        let y = [5.0, 0.1, 3.0, 0.0];
        let lambda = 1.0;
        let x = [4.0, 0.0, 2.0, 0.0]; // the optimum (soft threshold)
        let r: Vec<f64> = y.iter().zip(&x).map(|(yi, xi)| yi - xi).collect();
        let atr = a.matvec_transposed(&r);
        let x_l1: f64 = x.iter().sum();
        let g = duality_gap(&y, &r, &atr, x_l1, lambda, true);
        let col_norms = vec![1.0; 4];
        let mut active: Vec<usize> = (0..4).collect();
        let dropped = screen_columns(&mut active, &atr, &g, &col_norms, lambda, true);
        // Columns 1 and 3 (|y_j| < λ) are provably outside the support;
        // the true support {0, 2} must survive.
        assert_eq!(dropped, 2);
        assert_eq!(active, vec![0, 2]);
    }

    #[test]
    fn loose_gap_screens_nothing() {
        let a = Matrix::identity(3);
        let y = [5.0, 4.0, 3.0];
        let lambda = 1.0;
        // Cold start x = 0: the gap is large, the sphere covers the
        // whole constraint set and nothing may be discarded.
        let r = y;
        let atr = a.matvec_transposed(&r);
        let g = duality_gap(&y, &r, &atr, 0.0, lambda, true);
        let mut active: Vec<usize> = (0..3).collect();
        let dropped = screen_columns(&mut active, &atr, &g, &[1.0; 3], lambda, true);
        assert_eq!(dropped, 0);
        assert_eq!(active.len(), 3);
    }

    #[test]
    fn zero_lambda_is_a_no_op() {
        let g = GapState {
            primal: 1.0,
            gap: 1.0,
            alpha: 1.0,
        };
        let mut active = vec![0, 1];
        assert_eq!(
            screen_columns(&mut active, &[0.0, 0.0], &g, &[1.0; 2], 0.0, true),
            0
        );
        assert_eq!(active.len(), 2);
    }
}
