//! Iteratively reweighted least squares (IRLS) for basis pursuit.
//!
//! Approximates `min ‖x‖₁ s.t. A x = y` by a sequence of weighted
//! least-squares problems (Chartrand & Yin style): with weights
//! `wᵢ = 1 / (|xᵢ| + ε)` the weighted minimum-norm solution has the
//! closed form `x = D Aᵀ (A D Aᵀ)⁻¹ y`, `D = diag(1/w)`; ε decays as the
//! support sharpens. A fourth solver family alongside FISTA, ADMM and
//! OMP — useful as a cross-check because its failure modes differ.

use crate::{validate_problem, Recovery, Result, SolverError, SolverWorkspace, SparseRecovery};
use crowdwifi_linalg::solve::Lu;
use crowdwifi_linalg::vector;
use crowdwifi_linalg::Matrix;

/// The IRLS basis-pursuit solver.
///
/// # Example
///
/// ```
/// use crowdwifi_linalg::Matrix;
/// use crowdwifi_sparsesolve::{irls::Irls, SparseRecovery};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0]]);
/// let rec = Irls::default().recover(&a, &[1.0, 1.0])?;
/// // Minimum-l1 solution concentrates on column 2.
/// assert_eq!(rec.support(0.5), vec![2]);
/// # Ok::<(), crowdwifi_sparsesolve::SolverError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Irls {
    max_iterations: usize,
    tolerance: f64,
    epsilon_floor: f64,
}

impl Default for Irls {
    fn default() -> Self {
        Irls {
            max_iterations: 60,
            tolerance: 1e-8,
            epsilon_floor: 1e-10,
        }
    }
}

impl Irls {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the iteration cap (default 60 — IRLS converges in tens of
    /// sweeps).
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }

    /// Sets the relative-change stopping tolerance (default `1e-8`).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidParameter`] for negative values.
    pub fn with_tolerance(mut self, tolerance: f64) -> Result<Self> {
        if tolerance < 0.0 {
            return Err(SolverError::InvalidParameter {
                name: "tolerance",
                reason: format!("must be non-negative, got {tolerance}"),
            });
        }
        self.tolerance = tolerance;
        Ok(self)
    }
}

impl SparseRecovery for Irls {
    fn recover(&self, a: &Matrix, y: &[f64]) -> Result<Recovery> {
        self.recover_with(a, y, &mut SolverWorkspace::new())
    }

    fn recover_with(&self, a: &Matrix, y: &[f64], ws: &mut SolverWorkspace) -> Result<Recovery> {
        validate_problem(a, y)?;
        let (m, n) = a.shape();

        // Start from the minimum-ℓ2 solution (D = I).
        ws.x.clear();
        ws.x.resize(n, 0.0);
        let mut epsilon: f64 = 1.0;
        let mut iterations = 0;
        let mut converged = false;
        // Every entry of G is rewritten each iteration, so the matrix
        // allocation hoists out of the loop.
        let mut g = Matrix::zeros(m, m);

        for k in 0..self.max_iterations {
            iterations = k + 1;
            // D = diag(|x| + ε) in `n_scratch`; G = A D Aᵀ (m × m, SPD
            // for full-row-rank A).
            ws.n_scratch.clear();
            ws.n_scratch
                .extend(ws.x.iter().map(|&xi| xi.abs() + epsilon));
            let d = &ws.n_scratch;
            for r in 0..m {
                for c in r..m {
                    let mut s = 0.0;
                    for (j, &dj) in d.iter().enumerate().take(n) {
                        s += a.get(r, j) * dj * a.get(c, j);
                    }
                    g.set(r, c, s);
                    g.set(c, r, s);
                }
            }
            // Regularize slightly so rank-deficient systems stay solvable.
            for r in 0..m {
                g.set(r, r, g.get(r, r) + 1e-12);
            }
            // λ = G⁻¹ y in `m_scratch`.
            if let Err(e) = Lu::new(&g).and_then(|lu| lu.solve_into(y, &mut ws.m_scratch)) {
                return Err(SolverError::Linalg(e.to_string()));
            }
            // x_new = D Aᵀ λ, built in `x_alt` and swapped into `x`.
            a.matvec_transposed_into(&ws.m_scratch, &mut ws.grad);
            ws.x_alt.clear();
            ws.x_alt
                .extend(ws.grad.iter().zip(&ws.n_scratch).map(|(&v, &di)| di * v));

            let delta = vector::distance(&ws.x_alt, &ws.x);
            let scale = vector::norm2(&ws.x_alt).max(1e-12);
            std::mem::swap(&mut ws.x, &mut ws.x_alt);
            // ε decays with the current sparsity estimate (Chartrand-Yin
            // schedule): shrink once the iterate has stabilized.
            if delta <= 0.1 * scale {
                epsilon = (epsilon / 10.0).max(self.epsilon_floor);
            }
            if delta <= self.tolerance * scale && epsilon <= self.epsilon_floor * 1.01 {
                converged = true;
                break;
            }
        }

        a.matvec_into(&ws.x, &mut ws.m_scratch);
        vector::sub_into(&ws.m_scratch, y, &mut ws.m_scratch2);
        let residual_norm = vector::norm2(&ws.m_scratch2);
        Ok(Recovery {
            solution: ws.x.clone(),
            iterations,
            residual_norm,
            converged,
            screened_cols: 0,
            iterations_saved: if converged {
                self.max_iterations - iterations
            } else {
                0
            },
        })
    }

    fn name(&self) -> &'static str {
        "irls"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admm::BasisPursuit;

    fn bernoulli_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let scale = 1.0 / (m as f64).sqrt();
        Matrix::from_fn(m, n, |_, _| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            if (state.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1 == 1 {
                scale
            } else {
                -scale
            }
        })
    }

    #[test]
    fn exact_recovery_noiseless() {
        let (m, n) = (20, 50);
        let a = bernoulli_matrix(m, n, 3);
        let mut theta = vec![0.0; n];
        theta[7] = 1.5;
        theta[31] = -2.0;
        let y = a.matvec(&theta);
        let rec = Irls::default().recover(&a, &y).unwrap();
        let d = vector::distance(&rec.solution, &theta);
        assert!(d < 1e-4, "IRLS recovery error {d}");
        assert!(rec.residual_norm < 1e-6);
    }

    #[test]
    fn agrees_with_admm_basis_pursuit() {
        let (m, n) = (16, 40);
        let a = bernoulli_matrix(m, n, 9);
        let mut theta = vec![0.0; n];
        theta[4] = 1.0;
        theta[22] = 0.7;
        let y = a.matvec(&theta);
        let irls = Irls::default().recover(&a, &y).unwrap();
        let bp = BasisPursuit::default().recover(&a, &y).unwrap();
        let d = vector::distance(&irls.solution, &bp.solution);
        assert!(d < 1e-3, "IRLS vs ADMM-BP disagreement {d}");
    }

    #[test]
    fn solution_is_feasible_even_unconverged() {
        let a = bernoulli_matrix(10, 30, 5);
        let mut theta = vec![0.0; 30];
        theta[2] = 1.0;
        let y = a.matvec(&theta);
        let rec = Irls::default()
            .with_max_iterations(3)
            .recover(&a, &y)
            .unwrap();
        // Each IRLS iterate satisfies Ax = y by construction.
        assert!(rec.residual_norm < 1e-8, "residual {}", rec.residual_norm);
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let a = bernoulli_matrix(8, 20, 1);
        let rec = Irls::default().recover(&a, &[0.0; 8]).unwrap();
        assert!(rec.solution.iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn rejects_bad_tolerance_and_shapes() {
        assert!(Irls::default().with_tolerance(-1.0).is_err());
        let a = bernoulli_matrix(4, 8, 2);
        assert!(matches!(
            Irls::default().recover(&a, &[1.0; 3]),
            Err(SolverError::ShapeMismatch { .. })
        ));
    }
}
