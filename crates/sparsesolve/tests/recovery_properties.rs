//! Property-based cross-solver tests: all solvers must recover random
//! k-sparse signals from random Bernoulli measurements when the sampling
//! bound M = O(k log(N/k)) is comfortably satisfied.

use crowdwifi_linalg::{vector, Matrix};
use crowdwifi_sparsesolve::admm::{AdmmLasso, BasisPursuit};
use crowdwifi_sparsesolve::fista::Fista;
use crowdwifi_sparsesolve::irls::Irls;
use crowdwifi_sparsesolve::omp::Omp;
use crowdwifi_sparsesolve::SparseRecovery;
use proptest::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

const N: usize = 48;
const M: usize = 24;

fn gaussian_matrix(rng: &mut ChaCha8Rng) -> Matrix {
    let scale = 1.0 / (M as f64).sqrt();
    Matrix::from_fn(M, N, |_, _| {
        // Box–Muller from two uniforms.
        let u1: f64 = rng.random_range(1e-9..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    })
}

fn sparse_signal(rng: &mut ChaCha8Rng, k: usize, nonneg: bool) -> Vec<f64> {
    let mut theta = vec![0.0; N];
    let mut idx: Vec<usize> = (0..N).collect();
    idx.shuffle(rng);
    for &i in idx.iter().take(k) {
        let mag = rng.random_range(0.5..2.0);
        theta[i] = if nonneg || rng.random_bool(0.5) {
            mag
        } else {
            -mag
        };
    }
    theta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fista_recovers_support(seed in 0u64..1000, k in 1usize..4) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = gaussian_matrix(&mut rng);
        let theta = sparse_signal(&mut rng, k, true);
        let y = a.matvec(&theta);
        let rec = Fista::default().with_lambda_rel(0.005).unwrap()
            .recover(&a, &y).unwrap();
        let mut supp = rec.support(0.25);
        supp.sort_unstable();
        let truth = vector::support(&theta, 1e-9);
        prop_assert_eq!(supp, truth);
    }

    #[test]
    fn basis_pursuit_exact_in_noiseless_regime(seed in 0u64..1000, k in 1usize..4) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(77));
        let a = gaussian_matrix(&mut rng);
        let theta = sparse_signal(&mut rng, k, false);
        let y = a.matvec(&theta);
        let rec = BasisPursuit::default().recover(&a, &y).unwrap();
        prop_assert!(vector::distance(&rec.solution, &theta) < 1e-3);
    }

    #[test]
    fn omp_exact_with_known_sparsity(seed in 0u64..1000, k in 1usize..4) {
        // OMP's exact-recovery guarantee needs comfortable sparsity and
        // non-vanishing coefficients; k <= 3 against M = 24 Gaussian
        // rows is squarely inside it (k = 4 with small coefficients is
        // not — greedy selection can be misled, a real OMP limitation).
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1234));
        let a = gaussian_matrix(&mut rng);
        let theta = sparse_signal(&mut rng, k, false);
        let y = a.matvec(&theta);
        let rec = Omp::new(k).recover(&a, &y).unwrap();
        prop_assert!(vector::distance(&rec.solution, &theta) < 1e-6);
    }

    #[test]
    fn convex_solvers_agree(seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(4242));
        let a = gaussian_matrix(&mut rng);
        let theta = sparse_signal(&mut rng, 2, true);
        let y = a.matvec(&theta);
        let f = Fista::default().with_lambda_rel(0.01).unwrap().recover(&a, &y).unwrap();
        let m = AdmmLasso::default().with_lambda_rel(0.01).unwrap().recover(&a, &y).unwrap();
        prop_assert!(vector::distance(&f.solution, &m.solution) < 5e-2);
    }

    #[test]
    fn irls_matches_basis_pursuit(seed in 0u64..1000, k in 1usize..4) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(31337));
        let a = gaussian_matrix(&mut rng);
        let theta = sparse_signal(&mut rng, k, false);
        let y = a.matvec(&theta);
        let irls = Irls::default().recover(&a, &y).unwrap();
        prop_assert!(vector::distance(&irls.solution, &theta) < 1e-3,
            "IRLS missed the noiseless recovery");
    }

    #[test]
    fn screening_preserves_support_and_solution(seed in 0u64..1000, k in 1usize..4, nonneg in any::<bool>()) {
        // Gap-safe screening only discards columns that are provably
        // zero in every LASSO optimum, so on the same (Φ, y, λ) the
        // screened and unscreened solves must land on the *same*
        // minimizer — identical support, coefficients agreeing to
        // numerical precision. Both runs use a tolerance tight enough
        // that iterate-path differences (compaction, fused Gram
        // gradients) wash out. Covers both solver modes screening
        // supports: signed and non-negative FISTA.
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(555));
        let a = gaussian_matrix(&mut rng);
        let theta = sparse_signal(&mut rng, k, nonneg);
        let y = a.matvec(&theta);
        let base = Fista::default()
            .with_nonnegative(nonneg)
            .with_lambda_rel(0.01).unwrap()
            .with_max_iterations(200_000)
            .with_tolerance(1e-14).unwrap();
        let plain = base.clone().recover(&a, &y).unwrap();
        let screened = base
            .with_screening(true)
            .with_gram(true)
            .recover(&a, &y).unwrap();
        let mut s_plain = plain.support(0.25);
        s_plain.sort_unstable();
        let mut s_screened = screened.support(0.25);
        s_screened.sort_unstable();
        prop_assert_eq!(s_plain, s_screened, "screening changed the recovered support");
        let d = vector::distance(&plain.solution, &screened.solution);
        prop_assert!(d < 1e-9, "screened vs unscreened coefficients diverged: {}", d);
    }

    #[test]
    fn solutions_never_contain_nan(seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(999));
        let a = gaussian_matrix(&mut rng);
        // Random, not-necessarily-consistent measurements.
        let y: Vec<f64> = (0..M).map(|_| rng.random_range(-5.0..5.0)).collect();
        for solver in [&Fista::default() as &dyn SparseRecovery,
                       &AdmmLasso::default(), &Omp::new(6), &BasisPursuit::default(),
                       &Irls::default()] {
            let rec = solver.recover(&a, &y).unwrap();
            prop_assert!(rec.solution.iter().all(|x| x.is_finite()), "{} produced non-finite", solver.name());
        }
    }
}
