//! Offline shim for `proptest`: a deterministic mini property-testing
//! harness covering the API subset this workspace uses.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic sampling.** Case `i` of test `t` draws from a
//!   SplitMix64 stream seeded by `hash(t) ⊕ i` — every run explores the
//!   same inputs, so a failure reproduces without a persistence file.
//! * **No shrinking.** The failing case prints its index; inputs are
//!   re-derivable from (test name, index).
//!
//! Supported: range strategies over floats and integers, tuples,
//! `collection::vec`, `any::<bool>()`, `Just`, `prop_map`,
//! `prop_flat_map`, `proptest!` with an optional
//! `#![proptest_config(...)]` header, and `prop_assert!`/`prop_assert_eq!`.

use std::fmt;
use std::ops::Range;

/// Deterministic sample source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Builds the stream for one (test, case) pair.
    pub fn deterministic(case: u64, test_name: &str) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A recoverable test-case failure (what `prop_assert!` produces).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (resamples, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident.$idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Marker for [`any`]-style strategies.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (only `bool` is needed here).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Anything that can pick a vector length.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs one property over `config.cases` deterministic cases.
/// Used by the `proptest!` macro expansion; not part of the public
/// proptest API.
pub fn run_property<F>(config: &ProptestConfig, test_name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = TestRng::deterministic(case as u64, test_name);
        if let Err(e) = property(&mut rng) {
            panic!("property `{test_name}` failed at deterministic case {case}: {e}");
        }
    }
}

/// Declares property tests. Supports the optional
/// `#![proptest_config(...)]` header of real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$meta:meta])+ fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(&config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts inside a property; failure aborts only the current case
/// with a diagnostic rather than panicking the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

/// The conventional convenience import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -5.0..5.0f64, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_in_range(v in collection::vec(0.0..1.0f64, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn flat_map_chains(m in (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
            collection::vec(0u32..10, r * c).prop_map(move |data| (r, c, data))
        })) {
            let (r, c, data) = m;
            prop_assert_eq!(data.len(), r * c);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = collection::vec(0.0..1.0f64, 5);
        let a = Strategy::sample(&s, &mut TestRng::deterministic(3, "t"));
        let b = Strategy::sample(&s, &mut TestRng::deterministic(3, "t"));
        assert_eq!(a, b);
    }
}
