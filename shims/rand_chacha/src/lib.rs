//! Offline shim for `rand_chacha`: a real 8-round ChaCha keystream
//! generator behind the `ChaCha8Rng` name.
//!
//! The keystream is a faithful ChaCha8 (quarter-round structure, block
//! counter, "expand 32-byte k" constants); only the seeding convention
//! differs from upstream (`seed_from_u64` expands the seed with
//! SplitMix64 instead of upstream's seeding PRNG), so streams are
//! deterministic here but not bit-compatible with the real crate.

use rand::{RngCore, SeedableRng};

/// An 8-round ChaCha random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words), counter (2 words), nonce (2 words).
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 key schedule.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter starts at 0; nonce from the seed too.
        let n = next();
        state[14] = n as u32;
        state[15] = (n >> 32) as u32;
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..1_000).map(|_| rng.next_u64().count_ones()).sum();
        // 32k expected one-bits out of 64k; a crude 3-sigma band.
        assert!((31_000..=33_000).contains(&ones), "{ones}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
