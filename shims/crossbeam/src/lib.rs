//! Offline shim for `crossbeam`: the `channel` module only, with the
//! MPMC unbounded channel semantics the middleware relies on —
//! clonable senders *and* receivers, and disconnect errors once every
//! peer on the other side is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clonable (competing consumers).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout; senders may still exist.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.queue.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().expect("channel lock").senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.queue.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; fails when the channel is empty
        /// and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.ready.wait(state).expect("channel lock");
            }
        }

        /// Blocks until a value arrives or `timeout` elapses; fails with
        /// [`RecvTimeoutError::Disconnected`] when the channel is empty
        /// and every sender is dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, _timed_out) = self
                    .inner
                    .ready
                    .wait_timeout(state, deadline - now)
                    .expect("channel lock");
                state = s;
            }
        }

        /// Non-blocking receive: `None` when currently empty (regardless
        /// of sender liveness).
        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .queue
                .lock()
                .expect("channel lock")
                .items
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().expect("channel lock").receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.queue.lock().expect("channel lock").receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(9).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
