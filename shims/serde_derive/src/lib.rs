//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` on data types
//! (wire-format readiness); nothing serializes through the traits yet,
//! so empty expansions keep every type checking without pulling in a
//! registry dependency.

use proc_macro::TokenStream;

/// No-op `Serialize` derive. Accepts (and ignores) `#[serde(...)]`
/// helper attributes so annotated types still compile.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. Accepts (and ignores) `#[serde(...)]`
/// helper attributes so annotated types still compile.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
