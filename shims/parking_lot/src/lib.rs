//! Offline shim for `parking_lot`: `Mutex`/`RwLock` with the
//! parking_lot API shape (no-`Result` locking) implemented over std.
//! Poisoning is deliberately swallowed — parking_lot has no poisoning,
//! and the middleware relies on locks staying usable after a worker
//! thread panics.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
