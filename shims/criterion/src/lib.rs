//! Offline shim for `criterion`: a minimal wall-clock benchmarking
//! harness with the group/bench API shape the workspace's benches use.
//! Each benchmark runs a short warmup, then `sample_size` timed samples
//! of one closure invocation each, and prints min/median/mean.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n## bench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// A named benchmark group.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain string id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing driver passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    planned: usize,
}

impl Bencher {
    /// Times `planned` invocations of `f` (plus a small warmup).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..3.min(self.planned) {
            std::hint::black_box(f());
        }
        for _ in 0..self.planned {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        planned: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{label}: min {:?}  median {:?}  mean {:?}  ({} samples)",
        min,
        median,
        mean,
        b.samples.len()
    );
}

/// Declares a benchmark group entry point, in either the positional or
/// the `name/config/targets` form of real criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::std::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, &x| {
            b.iter(|| x + 1);
        });
        group.bench_function("plain", |b| b.iter(|| 2 * 2));
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("fista", 64).0, "fista/64");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }
}
