//! Offline shim for the `rand` crate.
//!
//! Implements the API subset the CrowdWiFi workspace uses — `RngCore`,
//! `Rng`/`RngExt`, `SeedableRng`, uniform `random_range` over float and
//! integer ranges, `random_bool`, and `seq::SliceRandom::shuffle` — on
//! top of a single `next_u64` primitive. The uniform-sampling
//! conventions match `rand` (53-bit floats in `[0, 1)`, widening-multiply
//! integer reduction), though the streams of concrete generators are not
//! bit-compatible with upstream.

use std::ops::{Range, RangeInclusive};

/// The random-source primitive: a stream of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension alias kept for source compatibility with callers that
/// import both `Rng` and `RngExt`.
pub trait RngExt: Rng {}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable construction, from a bare `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// `u64 -> f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 sample range");
        let u = unit_f64(rng.next_u64()) as f32;
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Unbiased-enough uniform integer in `[0, span)` via 128-bit
/// widening multiply (Lemire reduction without the rejection loop; the
/// bias is < 2⁻⁶⁴ per draw, far below anything the simulations resolve).
#[inline]
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive sample range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Slice shuffling and selection.
pub mod seq {
    use super::Rng;

    /// Random slice operations (Fisher–Yates shuffling).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(&mut *rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(&mut *rng, self.len() as u64) as usize])
            }
        }
    }
}

/// The conventional convenience import.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, RngExt, SampleRange, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // A weak mixer is plenty for the range-contract tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&x));
            let tiny: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(tiny > 0.0 && tiny < 1.0);
        }
    }

    #[test]
    fn integer_ranges_cover_and_stay_in_bounds() {
        let mut rng = Counter(7);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v: usize = rng.random_range(0..5);
            seen[v] = true;
            let w: usize = rng.random_range(1..=3usize);
            assert!((1..=3).contains(&w));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
