//! Offline shim for `serde`.
//!
//! Re-exports no-op `Serialize`/`Deserialize` derive macros (see the
//! `serde_derive` shim). The workspace decorates its wire types with the
//! derives but never serializes through the traits, so no trait
//! machinery is needed — and when a real serializer lands, this shim is
//! the single place to grow one.

pub use serde_derive::{Deserialize, Serialize};
